// Unit coverage of the CM2 (polling) mechanism across the three
// protocols (Section 4.2's pull-based consistency maintenance).

#include <gtest/gtest.h>

#include "sdcm/discovery/observer.hpp"
#include "sdcm/frodo/manager.hpp"
#include "sdcm/frodo/registry_node.hpp"
#include "sdcm/frodo/user.hpp"
#include "sdcm/jini/manager.hpp"
#include "sdcm/jini/registry.hpp"
#include "sdcm/jini/user.hpp"
#include "sdcm/upnp/manager.hpp"
#include "sdcm/upnp/user.hpp"

namespace sdcm {
namespace {

using discovery::ServiceDescription;
using sim::seconds;

ServiceDescription printer_sd() {
  ServiceDescription sd;
  sd.id = 1;
  sd.device_type = "Printer";
  sd.service_type = "ColorPrinter";
  return sd;
}

TEST(Cm2Polling, UpnpPollingAloneRetrievesTheUpdate) {
  sim::Simulator simulator(1);
  net::Network network(simulator);
  discovery::ConsistencyObserver observer;
  upnp::UpnpConfig config;
  config.enable_notification = false;  // CM2 only
  config.poll_period = seconds(300);
  upnp::UpnpManager manager(simulator, network, 1, config, &observer);
  manager.add_service(printer_sd());
  upnp::UpnpUser user(simulator, network, 2,
                      upnp::Requirement{"Printer", "ColorPrinter"}, config,
                      &observer);
  manager.start();
  user.start();
  simulator.schedule_at(seconds(1000), [&] { manager.change_service(1); });
  simulator.run_until(seconds(2000));
  EXPECT_EQ(network.counters().of_type(upnp::msg::kNotify), 0u);
  ASSERT_TRUE(user.cached().has_value());
  EXPECT_EQ(user.cached()->version, 2u);
  // The poll period bounds the latency: consistency within one period.
  const auto reached = observer.reach_time(2, 2);
  ASSERT_TRUE(reached.has_value());
  EXPECT_LE(*reached - seconds(1000), seconds(300) + seconds(1));
}

TEST(Cm2Polling, UpnpPollingIsSlowerThanNotification) {
  const auto latency = [](bool notify) {
    sim::Simulator simulator(5);
    net::Network network(simulator);
    discovery::ConsistencyObserver observer;
    upnp::UpnpConfig config;
    config.enable_notification = notify;
    config.poll_period = notify ? sim::SimDuration{0} : seconds(600);
    upnp::UpnpManager manager(simulator, network, 1, config, &observer);
    manager.add_service(printer_sd());
    upnp::UpnpUser user(simulator, network, 2,
                        upnp::Requirement{"Printer", "ColorPrinter"}, config,
                        &observer);
    manager.start();
    user.start();
    simulator.schedule_at(seconds(1000), [&] { manager.change_service(1); });
    simulator.run_until(seconds(3000));
    return *observer.reach_time(2, 2) - seconds(1000);
  };
  EXPECT_LT(latency(true), sim::seconds(1));
  EXPECT_GT(latency(false), sim::seconds(10));
}

TEST(Cm2Polling, JiniPeriodicLookupRetrievesTheUpdate) {
  sim::Simulator simulator(2);
  net::Network network(simulator);
  discovery::ConsistencyObserver observer;
  jini::JiniConfig config;
  config.enable_notification = false;
  config.poll_period = seconds(300);
  jini::JiniRegistry registry(simulator, network, 1, config);
  jini::JiniManager manager(simulator, network, 10, config, &observer);
  manager.add_service(printer_sd());
  jini::JiniUser user(simulator, network, 11,
                      jini::Template{"Printer", "ColorPrinter"}, config,
                      &observer);
  registry.start();
  manager.start();
  user.start();
  simulator.schedule_at(seconds(1000), [&] { manager.change_service(1); });
  simulator.run_until(seconds(2000));
  EXPECT_EQ(network.counters().of_type(jini::msg::kRemoteEvent), 0u);
  ASSERT_TRUE(user.cached().has_value());
  EXPECT_EQ(user.cached()->version, 2u);
}

TEST(Cm2Polling, FrodoPeriodicSearchRetrievesTheUpdate) {
  sim::Simulator simulator(3);
  net::Network network(simulator);
  discovery::ConsistencyObserver observer;
  frodo::FrodoConfig config;
  config.enable_notification = false;
  config.poll_period = seconds(300);
  frodo::FrodoRegistryNode registry(simulator, network, 1, 100, config);
  frodo::FrodoManager manager(simulator, network, 10,
                              frodo::DeviceClass::k3D, config, &observer);
  manager.add_service(printer_sd());
  frodo::FrodoUser user(simulator, network, 11, frodo::DeviceClass::k3D,
                        frodo::Matching{"Printer", "ColorPrinter"}, config,
                        &observer);
  registry.start();
  manager.start();
  user.start();
  simulator.schedule_at(seconds(1000), [&] { manager.change_service(1); });
  simulator.run_until(seconds(2000));
  ASSERT_TRUE(user.cached().has_value());
  EXPECT_EQ(user.cached()->version, 2u);
}

TEST(Cm2Polling, RedundantPollsCostMessages) {
  // "Polling is also a less efficient mechanism ... in scenarios where
  // services rarely change, causing multiple redundant polls."
  sim::Simulator simulator(4);
  net::Network network(simulator);
  upnp::UpnpConfig config;
  config.poll_period = seconds(300);
  upnp::UpnpManager manager(simulator, network, 1, config, nullptr);
  manager.add_service(printer_sd());
  upnp::UpnpUser user(simulator, network, 2,
                      upnp::Requirement{"Printer", "ColorPrinter"}, config,
                      nullptr);
  manager.start();
  user.start();
  simulator.run_until(seconds(5400));  // the service never changes
  // ~17 polls, each a GET + response - pure overhead.
  EXPECT_GE(network.counters().of_type(upnp::msg::kGetDescription), 15u);
}

TEST(Cm2Polling, DefaultConfigurationHasNoPolling) {
  sim::Simulator simulator(6);
  net::Network network(simulator);
  upnp::UpnpManager manager(simulator, network, 1, upnp::UpnpConfig{},
                            nullptr);
  manager.add_service(printer_sd());
  upnp::UpnpUser user(simulator, network, 2,
                      upnp::Requirement{"Printer", "ColorPrinter"},
                      upnp::UpnpConfig{}, nullptr);
  manager.start();
  user.start();
  simulator.run_until(seconds(5400));
  EXPECT_EQ(network.counters().of_type(upnp::msg::kGetDescription), 1u);
}

}  // namespace
}  // namespace sdcm

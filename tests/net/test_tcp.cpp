#include "sdcm/net/tcp.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace sdcm::net {
namespace {

using sim::seconds;

struct TcpFixture : ::testing::Test {
  sim::Simulator simulator{99};
  Network network{simulator};
  std::vector<Message> inbox1, inbox2;

  void SetUp() override {
    network.attach(1, [this](const Message& m) { inbox1.push_back(m); });
    network.attach(2, [this](const Message& m) { inbox2.push_back(m); });
  }

  static Message app_msg(NodeId src, NodeId dst, std::string_view type) {
    Message m;
    m.src = src;
    m.dst = dst;
    m.type = MessageType::intern(type);
    m.klass = MessageClass::kUpdate;
    return m;
  }
};

TEST_F(TcpFixture, HandshakeOpensOnHealthyNetwork) {
  bool opened = false;
  bool rexed = false;
  TcpConnection::open(
      network, 1, 2, [&](const auto&) { opened = true; },
      [&] { rexed = true; });
  simulator.run_until(seconds(1));
  EXPECT_TRUE(opened);
  EXPECT_FALSE(rexed);
  EXPECT_EQ(network.counters().of_type("tcp.syn"), 1u);
  EXPECT_EQ(network.counters().of_type("tcp.synack"), 1u);
}

TEST_F(TcpFixture, DataDeliveredOnceAndAcked) {
  std::shared_ptr<TcpConnection> conn;
  TcpConnection::open(
      network, 1, 2, [&](const auto& c) { conn = c; }, [] {});
  simulator.run_until(seconds(1));
  ASSERT_TRUE(conn);

  bool acked = false;
  conn->send(app_msg(1, 2, "notify"), [&] { acked = true; });
  simulator.run_until(seconds(2));
  ASSERT_EQ(inbox2.size(), 1u);
  EXPECT_EQ(inbox2[0].type, "notify");
  EXPECT_TRUE(inbox2[0].conn != nullptr);
  EXPECT_TRUE(acked);
  // Healthy network: exactly one app segment, one transport ack, no retx.
  EXPECT_EQ(network.counters().of_type("notify"), 1u);
  EXPECT_EQ(network.counters().of_type("tcp.ack"), 1u);
  EXPECT_EQ(network.counters().of_type("notify.retx"), 0u);
}

TEST(TcpRequestResponse, ResponderCanReplyOnSameConnection) {
  // Emulates request/response (UPnP GetDescription, Jini lookup): node 2
  // replies to a delivered "request" over the connection handle attached
  // to the message.
  sim::Simulator simulator(7);
  Network network(simulator);
  std::vector<Message> inbox1;
  network.attach(1, [&](const Message& m) { inbox1.push_back(m); });
  network.attach(2, [&](const Message& m) {
    if (m.type == "request") {
      Message reply;
      reply.src = 2;
      reply.dst = 1;
      reply.type = sdcm::net::MessageType::intern("response");
      reply.klass = MessageClass::kUpdate;
      m.conn->send(reply);
    }
  });

  Message request;
  request.src = 1;
  request.dst = 2;
  request.type = sdcm::net::MessageType::intern("request");
  request.klass = MessageClass::kUpdate;
  TcpConnection::open_and_send(network, request, {}, {});
  simulator.run_until(sim::seconds(1));
  ASSERT_EQ(inbox1.size(), 1u);
  EXPECT_EQ(inbox1[0].type, "response");
  // One handshake serves both directions.
  EXPECT_EQ(network.counters().of_type("tcp.syn"), 1u);
}

TEST_F(TcpFixture, RexAfterSetupWindowWhenPeerUnreachable) {
  network.interface(2).set_rx(false);
  bool opened = false;
  sim::SimTime rex_at = -1;
  TcpConnection::open(
      network, 1, 2, [&](const auto&) { opened = true; },
      [&] { rex_at = simulator.now(); });
  simulator.run_until(seconds(200));
  EXPECT_FALSE(opened);
  // Table 3: initial SYN at 0 plus 4 retransmissions at 6, 30, 54, 78 s;
  // REX is concluded one final 24 s gap after the last one, at 102 s.
  EXPECT_EQ(rex_at, seconds(102));
  // 5 SYNs reached the wire, none answered.
  EXPECT_EQ(network.counters().of_type("tcp.syn"), 5u);
  EXPECT_EQ(network.counters().of_type("tcp.synack"), 0u);
}

TEST_F(TcpFixture, RexWhenInitiatorTransmitterDown) {
  network.interface(1).set_tx(false);
  bool opened = false;
  bool rexed = false;
  TcpConnection::open(
      network, 1, 2, [&](const auto&) { opened = true; }, [&] { rexed = true; });
  simulator.run_until(seconds(200));
  EXPECT_FALSE(opened);
  EXPECT_TRUE(rexed);
  EXPECT_EQ(network.counters().of_type("tcp.syn"), 0u);  // never hit the wire
}

TEST_F(TcpFixture, HandshakeSucceedsOnRetryAfterShortOutage) {
  // Peer recovers between the first attempt (t=0) and the second (t=6 s).
  network.interface(2).set_rx(false);
  simulator.schedule_at(seconds(3), [&] { network.interface(2).set_rx(true); });
  sim::SimTime opened_at = -1;
  TcpConnection::open(
      network, 1, 2, [&](const auto&) { opened_at = simulator.now(); }, [] {});
  simulator.run_until(seconds(100));
  ASSERT_GE(opened_at, seconds(6));
  EXPECT_LT(opened_at, seconds(7));
  EXPECT_EQ(network.counters().of_type("tcp.syn"), 2u);
}

TEST_F(TcpFixture, DataRetransmitsUntilSuccessWithBackoff) {
  std::shared_ptr<TcpConnection> conn;
  TcpConnection::open(
      network, 1, 2, [&](const auto& c) { conn = c; }, [] {});
  simulator.run_until(seconds(1));
  ASSERT_TRUE(conn);

  // Receiver goes down for 10 s; data sent during the outage must arrive
  // after recovery (Table 3: "retransmit until success").
  network.interface(2).set_rx(false);
  simulator.schedule_in(seconds(10),
                        [&] { network.interface(2).set_rx(true); });
  bool acked = false;
  conn->send(app_msg(1, 2, "notify"), [&] { acked = true; });
  simulator.run_until(seconds(60));
  ASSERT_EQ(inbox2.size(), 1u);
  EXPECT_TRUE(acked);
  // First wire copy is the app message; all retries count as transport.
  EXPECT_EQ(network.counters().of_type("notify"), 1u);
  EXPECT_GT(network.counters().of_type("notify.retx"), 10u);
}

TEST_F(TcpFixture, RetransmissionBackoffGrows25Percent) {
  std::shared_ptr<TcpConnection> conn;
  TcpConnection::Config cfg;
  cfg.initial_rto = sim::milliseconds(1);
  TcpConnection::open(
      network, 1, 2, [&](const auto& c) { conn = c; }, [] {}, cfg);
  simulator.run_until(seconds(1));
  ASSERT_TRUE(conn);

  network.interface(2).set_rx(false);
  const sim::SimTime t0 = simulator.now();
  conn->send(app_msg(1, 2, "notify"));
  simulator.run_until(t0 + sim::milliseconds(100));

  // Expected retransmission offsets: 1, 2.25, 3.8125, ... ms (cumulative
  // sums of 1, 1.25, 1.5625, ...).
  std::vector<sim::SimTime> retx_times;
  simulator.trace().for_each_event("net.drop.rx", [&](const auto& r) {
    retx_times.push_back(r.at - t0);
  });
  ASSERT_GE(retx_times.size(), 4u);
  // First copy arrives ~[10,100] us after t0; first retx ~1 ms later.
  double expected_send = 0.0;
  double rto = 1000.0;  // us
  for (std::size_t i = 1; i < 4; ++i) {
    expected_send += rto;
    rto *= 1.25;
    const auto actual = static_cast<double>(retx_times[i]);
    EXPECT_NEAR(actual, expected_send, 150.0)  // +- arrival jitter
        << "retransmission " << i;
  }
}

TEST_F(TcpFixture, CloseStopsRetransmissions) {
  std::shared_ptr<TcpConnection> conn;
  TcpConnection::open(
      network, 1, 2, [&](const auto& c) { conn = c; }, [] {});
  simulator.run_until(seconds(1));
  ASSERT_TRUE(conn);
  network.interface(2).set_rx(false);
  conn->send(app_msg(1, 2, "notify"));
  simulator.run_until(seconds(2));
  conn->close();
  const auto drops_at_close = simulator.trace().count_event("net.drop.rx");
  simulator.run_until(seconds(30));
  EXPECT_EQ(simulator.trace().count_event("net.drop.rx"), drops_at_close);
  EXPECT_FALSE(conn->is_open());
}

TEST_F(TcpFixture, OpenAndSendDeliversInOneShot) {
  bool acked = false;
  TcpConnection::open_and_send(network, app_msg(1, 2, "renew"),
                               [&] { acked = true; }, [] {});
  simulator.run_until(seconds(1));
  ASSERT_EQ(inbox2.size(), 1u);
  EXPECT_EQ(inbox2[0].type, "renew");
  EXPECT_TRUE(acked);
}

TEST_F(TcpFixture, OpenAndSendRexesWhenUnreachable) {
  network.interface(2).set_rx(false);
  bool rexed = false;
  TcpConnection::open_and_send(network, app_msg(1, 2, "renew"), [] {},
                               [&] { rexed = true; });
  simulator.run_until(seconds(150));
  EXPECT_TRUE(rexed);
  EXPECT_TRUE(inbox2.empty());
}

TEST_F(TcpFixture, PeerOfReturnsOtherEndpoint) {
  std::shared_ptr<TcpConnection> conn;
  TcpConnection::open(
      network, 1, 2, [&](const auto& c) { conn = c; }, [] {});
  simulator.run_until(seconds(1));
  ASSERT_TRUE(conn);
  EXPECT_EQ(conn->peer_of(1), 2u);
  EXPECT_EQ(conn->peer_of(2), 1u);
  EXPECT_EQ(conn->initiator(), 1u);
  EXPECT_EQ(conn->responder(), 2u);
}

TEST(TcpLifetime, ConnectionSurvivesViaPendingEventsOnly) {
  // The caller drops every reference; the connection must stay alive
  // through its own scheduled events and still complete the exchange.
  sim::Simulator simulator(8);
  Network network(simulator);
  int delivered = 0;
  network.attach(1, [](const Message&) {});
  network.attach(2, [&](const Message&) { ++delivered; });

  Message m;
  m.src = 1;
  m.dst = 2;
  m.type = sdcm::net::MessageType::intern("oneshot");
  m.klass = MessageClass::kControl;
  TcpConnection::open_and_send(network, m, {}, {});
  simulator.run_until(sim::seconds(1));
  EXPECT_EQ(delivered, 1);
}

}  // namespace
}  // namespace sdcm::net

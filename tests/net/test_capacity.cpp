// Per-link token-bucket capacity model (workload saturation engine):
// steady traffic below the rate is untouched, bursts beyond the bucket
// are delayed by their queue position, and overflow past the bounded
// queue is dropped and counted.

#include <gtest/gtest.h>

#include <vector>

#include "sdcm/net/network.hpp"

namespace sdcm::net {
namespace {

using sim::microseconds;
using sim::seconds;

struct CapacityFixture : ::testing::Test {
  sim::Simulator simulator{777};
  Network network{simulator};
  std::vector<sim::SimTime> arrivals1, arrivals2;

  void SetUp() override {
    network.attach(1, [](const Message&) {});
    network.attach(2, [this](const Message&) {
      arrivals2.push_back(simulator.now());
    });
    network.attach(3, [](const Message&) {});
  }

  static Message msg(NodeId src, NodeId dst) {
    Message m;
    m.src = src;
    m.dst = dst;
    m.type = sdcm::net::MessageType::intern("t");
    return m;
  }
};

TEST_F(CapacityFixture, DisabledByDefaultAndCountsStayZero) {
  EXPECT_FALSE(network.capacity_enabled());
  for (int i = 0; i < 50; ++i) network.send(msg(1, 2));
  simulator.run_until(seconds(1));
  EXPECT_EQ(arrivals2.size(), 50u);
  const sim::KernelStats& k = simulator.kernel_stats();
  EXPECT_EQ(k.capacity_dropped, 0u);
  EXPECT_EQ(k.capacity_delayed, 0u);
  EXPECT_EQ(k.capacity_queue_peak, 0u);
}

TEST_F(CapacityFixture, BurstBeyondBucketIsDelayedByQueuePosition) {
  // 1000 msgs/s, bucket of 2, deep queue: a burst of 10 admits 2
  // immediately and queues 8, the deepest 8 ticks (8 ms) behind.
  network.set_link_capacity(/*rate_hz=*/1000.0, /*burst=*/2.0,
                            /*queue_limit=*/100);
  ASSERT_TRUE(network.capacity_enabled());
  for (int i = 0; i < 10; ++i) network.send(msg(1, 2));
  simulator.run_until(seconds(1));
  ASSERT_EQ(arrivals2.size(), 10u);
  const sim::KernelStats& k = simulator.kernel_stats();
  EXPECT_EQ(k.capacity_dropped, 0u);
  EXPECT_EQ(k.capacity_delayed, 8u);
  EXPECT_EQ(k.capacity_queue_peak, 8u);
  // The two in-bucket sends see only the Table 3 transit delay; the
  // last queued one waits its full 8-slot drain first.
  EXPECT_LE(arrivals2[1], microseconds(100));
  EXPECT_GE(arrivals2.back(), microseconds(8000));
}

TEST_F(CapacityFixture, OverflowBeyondQueueLimitDrops) {
  network.set_link_capacity(/*rate_hz=*/1000.0, /*burst=*/1.0,
                            /*queue_limit=*/2);
  for (int i = 0; i < 10; ++i) network.send(msg(1, 2));
  simulator.run_until(seconds(1));
  // 1 through the bucket, 2 queued, 7 dropped.
  EXPECT_EQ(arrivals2.size(), 3u);
  const sim::KernelStats& k = simulator.kernel_stats();
  EXPECT_EQ(k.capacity_delayed, 2u);
  EXPECT_EQ(k.capacity_dropped, 7u);
  EXPECT_EQ(k.capacity_queue_peak, 2u);
  // Capacity drops kill the copy before it leaves the source, so they
  // land in the tx-unit drop counter (and the legacy aggregate).
  EXPECT_GE(k.udp_copies_dropped_tx, 7u);
  EXPECT_GE(k.udp_dropped(), 7u);
}

TEST_F(CapacityFixture, BucketsArePerSourceLink) {
  network.set_link_capacity(/*rate_hz=*/1000.0, /*burst=*/1.0,
                            /*queue_limit=*/0);
  for (int i = 0; i < 5; ++i) network.send(msg(1, 2));  // drains link 1
  for (int i = 0; i < 1; ++i) network.send(msg(3, 2));  // link 3 untouched
  simulator.run_until(seconds(1));
  // 1 admitted from node 1 (queue_limit 0 drops the rest), 1 from node 3.
  EXPECT_EQ(arrivals2.size(), 2u);
  EXPECT_EQ(simulator.kernel_stats().capacity_dropped, 4u);
}

TEST_F(CapacityFixture, SteadyTrafficUnderTheRateIsNeverShaped) {
  network.set_link_capacity(/*rate_hz=*/1000.0, /*burst=*/1.0,
                            /*queue_limit=*/0);
  // One message every 10 ms against a 1 ms refill period.
  for (int i = 0; i < 20; ++i) {
    simulator.schedule_at(sim::milliseconds(10) * i,
                          [this] { network.send(msg(1, 2)); });
  }
  simulator.run_until(seconds(1));
  EXPECT_EQ(arrivals2.size(), 20u);
  EXPECT_EQ(simulator.kernel_stats().capacity_delayed, 0u);
  EXPECT_EQ(simulator.kernel_stats().capacity_dropped, 0u);
}

TEST_F(CapacityFixture, MulticastShapesEveryWireCopy) {
  network.set_link_capacity(/*rate_hz=*/1000.0, /*burst=*/2.0,
                            /*queue_limit=*/0);
  Message m = msg(1, sim::kNoNode);
  network.multicast(m, /*redundant_copies=*/5);
  simulator.run_until(seconds(1));
  // Each copy fans out to both other ports, but admission is charged
  // per copy at the source: 2 admitted, 3 dropped.
  EXPECT_EQ(arrivals2.size(), 2u);
  EXPECT_EQ(simulator.kernel_stats().capacity_dropped, 3u);
}

}  // namespace
}  // namespace sdcm::net

// Interest-scoped multicast fan-out (DESIGN.md section 14): routing by
// declared interest, the three MulticastScope modes and their RNG
// disciplines, the subscription index under interest churn, the
// udp_deliveries_skipped counter, and the closure-size / reserve_nodes
// regressions fixed alongside the scoping work.

#include "sdcm/net/network.hpp"

#include <gtest/gtest.h>

#include <optional>
#include <vector>

namespace sdcm::net {
namespace {

using sim::seconds;

/// A sink with a declared (or universal) interest set and an inbox.
struct InterestedSink final : MessageSink {
  std::optional<std::vector<MessageType>> interests;
  std::vector<Message> inbox;
  std::vector<sim::SimTime> arrivals;
  sim::Simulator* clock = nullptr;

  void handle_message(const Message& msg) override {
    inbox.push_back(msg);
    if (clock != nullptr) arrivals.push_back(clock->now());
  }

  [[nodiscard]] std::optional<std::vector<MessageType>> multicast_interests()
      const override {
    return interests;
  }
};

Message multicast_msg(NodeId src, std::string_view type) {
  Message m;
  m.src = src;
  m.dst = sim::kNoNode;
  m.type = MessageType::intern(type);
  m.klass = MessageClass::kDiscovery;
  return m;
}

struct MulticastScopeFixture : ::testing::Test {
  sim::Simulator simulator{777};
  Network network{simulator};
  InterestedSink sender;      // node 1, universal
  InterestedSink wants_a;     // node 2, subscribes "scope.a"
  InterestedSink wants_b;     // node 3, subscribes "scope.b"
  InterestedSink universal;   // node 4, nullopt = everything
  InterestedSink wants_none;  // node 5, engaged empty = no multicast

  void SetUp() override {
    wants_a.interests = std::vector<MessageType>{MessageType::intern("scope.a")};
    wants_b.interests = std::vector<MessageType>{MessageType::intern("scope.b")};
    wants_none.interests = std::vector<MessageType>{};
    network.attach(1, sender);
    network.attach(2, wants_a);
    network.attach(3, wants_b);
    network.attach(4, universal);
    network.attach(5, wants_none);
  }
};

TEST(MulticastScopeNames, RoundTripThroughToString) {
  for (const MulticastScope scope :
       {MulticastScope::kBroadcast, MulticastScope::kScoped,
        MulticastScope::kScopedRng}) {
    const auto parsed = multicast_scope_from_name(to_string(scope));
    ASSERT_TRUE(parsed.has_value()) << to_string(scope);
    EXPECT_EQ(*parsed, scope);
  }
  EXPECT_FALSE(multicast_scope_from_name("unscoped").has_value());
  EXPECT_FALSE(multicast_scope_from_name("").has_value());
}

TEST_F(MulticastScopeFixture, ScopedRoutesByDeclaredInterest) {
  network.multicast(multicast_msg(1, "scope.a"));
  simulator.run_until(seconds(1));
  EXPECT_TRUE(sender.inbox.empty());  // never back to the source
  EXPECT_EQ(wants_a.inbox.size(), 1u);
  EXPECT_TRUE(wants_b.inbox.empty());
  EXPECT_EQ(universal.inbox.size(), 1u);
  EXPECT_TRUE(wants_none.inbox.empty());
  // Two of the four destinations were uninterested.
  EXPECT_EQ(simulator.kernel_stats().udp_deliveries_skipped, 2u);
}

TEST_F(MulticastScopeFixture, ScopedRngRoutesIdenticallyToScoped) {
  network.set_multicast_scope(MulticastScope::kScopedRng);
  network.multicast(multicast_msg(1, "scope.b"));
  simulator.run_until(seconds(1));
  EXPECT_TRUE(wants_a.inbox.empty());
  EXPECT_EQ(wants_b.inbox.size(), 1u);
  EXPECT_EQ(universal.inbox.size(), 1u);
  EXPECT_TRUE(wants_none.inbox.empty());
  EXPECT_EQ(simulator.kernel_stats().udp_deliveries_skipped, 2u);
}

TEST_F(MulticastScopeFixture, BroadcastIgnoresInterests) {
  network.set_multicast_scope(MulticastScope::kBroadcast);
  network.multicast(multicast_msg(1, "scope.a"));
  simulator.run_until(seconds(1));
  EXPECT_EQ(wants_a.inbox.size(), 1u);
  EXPECT_EQ(wants_b.inbox.size(), 1u);
  EXPECT_EQ(universal.inbox.size(), 1u);
  EXPECT_EQ(wants_none.inbox.size(), 1u);
  EXPECT_EQ(simulator.kernel_stats().udp_deliveries_skipped, 0u);
}

TEST_F(MulticastScopeFixture, SkippedCountsPerCopyPerDestination) {
  // 6 redundant copies x 2 uninterested destinations.
  network.multicast(multicast_msg(1, "scope.a"), 6);
  simulator.run_until(seconds(1));
  EXPECT_EQ(wants_a.inbox.size(), 6u);
  EXPECT_EQ(simulator.kernel_stats().udp_deliveries_skipped, 12u);
}

TEST_F(MulticastScopeFixture, UnicastIsNeverFiltered) {
  Message m = multicast_msg(1, "scope.a");
  m.dst = 5;  // wants_none subscribed to no multicast at all
  network.send(m);
  simulator.run_until(seconds(1));
  EXPECT_EQ(wants_none.inbox.size(), 1u);
}

TEST_F(MulticastScopeFixture, SubscribersListedInAttachOrder) {
  EXPECT_EQ(network.multicast_subscribers(MessageType::intern("scope.a")),
            (std::vector<NodeId>{1, 2, 4}));
  EXPECT_EQ(network.multicast_subscribers(MessageType::intern("scope.b")),
            (std::vector<NodeId>{1, 3, 4}));
  // A type nobody declared still reaches the universal sinks.
  EXPECT_EQ(network.multicast_subscribers(MessageType::intern("scope.other")),
            (std::vector<NodeId>{1, 4}));
}

TEST_F(MulticastScopeFixture, IndexSurvivesInterestChurn) {
  ASSERT_TRUE(network.check_subscription_index());
  // Narrow a universal sink, widen a narrow one, silence another, then
  // restore - every transition rewrites the dense index in place.
  network.set_multicast_interests(
      4, std::vector<MessageType>{MessageType::intern("scope.a")});
  network.set_multicast_interests(
      2, std::vector<MessageType>{MessageType::intern("scope.a"),
                                  MessageType::intern("scope.b")});
  network.set_multicast_interests(3, std::vector<MessageType>{});
  ASSERT_TRUE(network.check_subscription_index());
  EXPECT_EQ(network.multicast_subscribers(MessageType::intern("scope.b")),
            (std::vector<NodeId>{1, 2}));
  network.set_multicast_interests(3, std::nullopt);  // back to universal
  ASSERT_TRUE(network.check_subscription_index());
  EXPECT_EQ(network.multicast_subscribers(MessageType::intern("scope.b")),
            (std::vector<NodeId>{1, 2, 3}));

  network.multicast(multicast_msg(1, "scope.b"));
  simulator.run_until(seconds(1));
  EXPECT_EQ(wants_a.inbox.size(), 1u);  // widened to scope.b above
  EXPECT_EQ(wants_b.inbox.size(), 1u);
  EXPECT_TRUE(universal.inbox.empty());  // narrowed to scope.a above
}

TEST_F(MulticastScopeFixture, DuplicateInterestDeclarationsCollapse) {
  network.set_multicast_interests(
      2, std::vector<MessageType>{MessageType::intern("scope.a"),
                                  MessageType::intern("scope.a")});
  ASSERT_TRUE(network.check_subscription_index());
  network.multicast(multicast_msg(1, "scope.a"));
  simulator.run_until(seconds(1));
  EXPECT_EQ(wants_a.inbox.size(), 1u);  // one delivery, not two
}

// The default scoped mode must consume delay/loss RNG in attach order
// for every destination - interested or not - so its delivery schedule
// is bit-identical to the legacy broadcast loop's.
TEST(MulticastScopeRng, ScopedMatchesBroadcastDrawForDraw) {
  std::vector<sim::SimTime> times[2];
  const MulticastScope modes[2] = {MulticastScope::kBroadcast,
                                   MulticastScope::kScoped};
  for (int i = 0; i < 2; ++i) {
    sim::Simulator simulator{424242};
    Network network{simulator};
    network.set_multicast_scope(modes[i]);
    InterestedSink sender, skipped, last;
    skipped.interests = std::vector<MessageType>{};  // no multicast
    last.clock = &simulator;
    network.attach(1, sender);
    network.attach(2, skipped);
    network.attach(3, last);
    for (int k = 0; k < 50; ++k) {
      network.multicast(multicast_msg(1, "rng.pin"));
    }
    simulator.run_until(seconds(1));
    times[i] = last.arrivals;
  }
  ASSERT_EQ(times[0].size(), 50u);
  EXPECT_EQ(times[0], times[1]);
}

// scoped-rng deliberately breaks that alignment: it draws only for
// subscribers, so a destination *after* a skipped one reuses the
// skipped draws and lands at a different time (that is why its goldens
// are pinned separately), while a destination *before* any skip still
// matches the scoped stream draw for draw.
TEST(MulticastScopeRng, ScopedRngSkipsDrawsForUninterested) {
  std::vector<sim::SimTime> before_at(2u), after_at(2u);
  const MulticastScope modes[2] = {MulticastScope::kScoped,
                                   MulticastScope::kScopedRng};
  for (std::size_t i = 0; i < 2; ++i) {
    sim::Simulator simulator{424242};
    Network network{simulator};
    network.set_multicast_scope(modes[i]);
    InterestedSink sender, before, skipped, after;
    before.clock = &simulator;
    skipped.interests = std::vector<MessageType>{};
    after.clock = &simulator;
    network.attach(1, sender);
    network.attach(2, before);
    network.attach(3, skipped);
    network.attach(4, after);
    network.multicast(multicast_msg(1, "rng.skip"));
    simulator.run_until(seconds(1));
    ASSERT_EQ(before.arrivals.size(), 1u);
    ASSERT_EQ(after.arrivals.size(), 1u);
    before_at[i] = before.arrivals[0];
    after_at[i] = after.arrivals[0];
  }
  EXPECT_EQ(before_at[0], before_at[1]);  // draw precedes any skip
  EXPECT_NE(after_at[0], after_at[1]);    // node 4 reuses node 3's draws
}

// Every multicast delivery closure must fit InlineCallback's buffer:
// the per-delivery heap allocation this PR removed was the single
// biggest run-loop cost at 10^4+ nodes.
TEST(MulticastScopeAlloc, DeliveryClosuresStayInline) {
  sim::Simulator simulator{99};
  Network network{simulator};
  InterestedSink sinks[12];
  for (NodeId id = 1; id <= 12; ++id) {
    network.attach(id, sinks[id - 1]);
  }
  network.set_message_loss_rate(0.25);  // the lossy path captures too
  for (int k = 0; k < 20; ++k) {
    network.multicast(multicast_msg(1, "alloc.pin"), 3);
  }
  simulator.run_until(seconds(1));
  EXPECT_EQ(simulator.kernel_stats().callback_heap_allocs, 0u);
  network.set_multicast_scope(MulticastScope::kScopedRng);
  for (int k = 0; k < 20; ++k) {
    network.multicast(multicast_msg(1, "alloc.pin"), 3);
  }
  simulator.run_until(seconds(2));
  EXPECT_EQ(simulator.kernel_stats().callback_heap_allocs, 0u);
}

// reserve_nodes(max_id) must cover id == max_id itself (it reserves
// max_id + 1 slots): attaching the last planned id used to reallocate
// the table, invalidating interface references held across the build.
TEST(MulticastScopeReserve, ReserveCoversTheLargestPlannedId) {
  sim::Simulator simulator{7};
  Network network{simulator};
  network.reserve_nodes(8);
  InterestedSink sinks[8];
  network.attach(1, sinks[0]);
  const InterfaceState* iface = &network.interface(1);
  const NodeId* order = network.nodes().data();
  for (NodeId id = 2; id <= 8; ++id) {
    network.attach(id, sinks[id - 1]);
  }
  EXPECT_EQ(&network.interface(1), iface);
  EXPECT_EQ(network.nodes().data(), order);
  EXPECT_EQ(network.nodes().size(), 8u);
}

}  // namespace
}  // namespace sdcm::net

#include "sdcm/net/network.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace sdcm::net {
namespace {

using sim::seconds;

struct NetworkFixture : ::testing::Test {
  sim::Simulator simulator{12345};
  Network network{simulator};
  std::vector<Message> inbox1, inbox2, inbox3;

  void SetUp() override {
    network.attach(1, [this](const Message& m) { inbox1.push_back(m); });
    network.attach(2, [this](const Message& m) { inbox2.push_back(m); });
    network.attach(3, [this](const Message& m) { inbox3.push_back(m); });
  }

  static Message msg(NodeId src, NodeId dst, std::string_view type,
                     MessageClass klass = MessageClass::kControl) {
    Message m;
    m.src = src;
    m.dst = dst;
    m.type = MessageType::intern(type);
    m.klass = klass;
    return m;
  }
};

TEST_F(NetworkFixture, UnicastDelivers) {
  network.send(msg(1, 2, "hello"));
  simulator.run_until(seconds(1));
  ASSERT_EQ(inbox2.size(), 1u);
  EXPECT_EQ(inbox2[0].type_name(), "hello");
  EXPECT_EQ(inbox2[0].src, 1u);
  EXPECT_TRUE(inbox1.empty());
  EXPECT_TRUE(inbox3.empty());
}

TEST_F(NetworkFixture, DelayWithinTableThreeBounds) {
  // Table 3: transmission delay 10 us - 100 us.
  for (int i = 0; i < 200; ++i) {
    sim::Simulator s(static_cast<std::uint64_t>(i));
    Network n(s);
    sim::SimTime arrival = -1;
    n.attach(1, [](const Message&) {});
    n.attach(2, [&](const Message&) { arrival = s.now(); });
    Message m;
    m.src = 1;
    m.dst = 2;
    m.type = sdcm::net::MessageType::intern("t");
    n.send(m);
    s.run_until(seconds(1));
    ASSERT_GE(arrival, sim::microseconds(10));
    ASSERT_LE(arrival, sim::microseconds(100));
  }
}

TEST_F(NetworkFixture, TransmitterDownLosesMessageSilently) {
  network.interface(1).set_tx(false);
  network.send(msg(1, 2, "lost"));
  simulator.run_until(seconds(1));
  EXPECT_TRUE(inbox2.empty());
  EXPECT_EQ(network.counters().total(), 0u);
}

TEST_F(NetworkFixture, ReceiverDownAtArrivalLosesMessage) {
  network.interface(2).set_rx(false);
  network.send(msg(1, 2, "lost"));
  simulator.run_until(seconds(1));
  EXPECT_TRUE(inbox2.empty());
  // The message did reach the wire, so it is counted.
  EXPECT_EQ(network.counters().total(), 1u);
}

TEST_F(NetworkFixture, ReceiverFailingMidFlightLosesMessage) {
  // rx goes down after the send but before the (>=10 us) arrival.
  network.send(msg(1, 2, "in-flight"));
  simulator.schedule_in(sim::microseconds(1),
                        [&] { network.interface(2).set_rx(false); });
  simulator.run_until(seconds(1));
  EXPECT_TRUE(inbox2.empty());
}

TEST_F(NetworkFixture, MulticastReachesAllOthers) {
  network.multicast(msg(1, 0, "announce", MessageClass::kDiscovery));
  simulator.run_until(seconds(1));
  EXPECT_TRUE(inbox1.empty());  // not delivered to the source
  ASSERT_EQ(inbox2.size(), 1u);
  ASSERT_EQ(inbox3.size(), 1u);
  EXPECT_TRUE(inbox2[0].via_multicast);
}

TEST_F(NetworkFixture, MulticastRedundancyDeliversCopies) {
  // UPnP/Jini redundantly transmit every multicast 6 times (Table 3).
  network.multicast(msg(1, 0, "announce", MessageClass::kDiscovery), 6);
  simulator.run_until(seconds(1));
  EXPECT_EQ(inbox2.size(), 6u);
  EXPECT_EQ(inbox3.size(), 6u);
  // Wire copies counted once each, independent of receiver count.
  EXPECT_EQ(network.counters().of_type("announce"), 6u);
}

TEST_F(NetworkFixture, MulticastWithTxDownCountsNothing) {
  network.interface(1).set_tx(false);
  network.multicast(msg(1, 0, "announce"), 6);
  simulator.run_until(seconds(1));
  EXPECT_TRUE(inbox2.empty());
  EXPECT_EQ(network.counters().total(), 0u);
}

TEST_F(NetworkFixture, MulticastPartialReceiverFailure) {
  network.interface(2).set_rx(false);
  network.multicast(msg(1, 0, "announce"));
  simulator.run_until(seconds(1));
  EXPECT_TRUE(inbox2.empty());
  EXPECT_EQ(inbox3.size(), 1u);
}

TEST_F(NetworkFixture, TransmitReportsDeliveryToCaller) {
  bool result = false;
  bool called = false;
  const bool left = network.transmit(msg(1, 2, "seg"), /*deliver=*/false,
                                     [&](bool ok) {
                                       called = true;
                                       result = ok;
                                     });
  simulator.run_until(seconds(1));
  EXPECT_TRUE(left);
  EXPECT_TRUE(called);
  EXPECT_TRUE(result);
  EXPECT_TRUE(inbox2.empty());  // deliver=false bypasses the handler
}

TEST_F(NetworkFixture, TransmitReportsTxFailure) {
  network.interface(1).set_tx(false);
  bool result = true;
  const bool left =
      network.transmit(msg(1, 2, "seg"), false, [&](bool ok) { result = ok; });
  simulator.run_until(seconds(1));
  EXPECT_FALSE(left);
  EXPECT_FALSE(result);
}

TEST_F(NetworkFixture, DeliverLocalBypassesInterfaces) {
  network.interface(1).set_tx(false);
  network.interface(2).set_rx(false);
  network.deliver_local(msg(1, 2, "direct"));
  ASSERT_EQ(inbox2.size(), 1u);
  EXPECT_EQ(network.counters().total(), 0u);
}

TEST_F(NetworkFixture, DuplicateAttachThrows) {
  EXPECT_THROW(network.attach(1, [](const Message&) {}),
               std::invalid_argument);
}

TEST_F(NetworkFixture, ReservedIdThrows) {
  EXPECT_THROW(network.attach(sim::kNoNode, [](const Message&) {}),
               std::invalid_argument);
}

TEST_F(NetworkFixture, AttachErrorCarriesKindAndId) {
  try {
    network.attach(2, [](const Message&) {});
    FAIL() << "duplicate attach must throw";
  } catch (const AttachError& e) {
    EXPECT_EQ(e.kind(), AttachError::Kind::kDuplicateId);
    EXPECT_EQ(e.id(), NodeId{2});
  }
  try {
    network.attach(sim::kNoNode, [](const Message&) {});
    FAIL() << "reserved id must throw";
  } catch (const AttachError& e) {
    EXPECT_EQ(e.kind(), AttachError::Kind::kReservedId);
    EXPECT_EQ(e.id(), sim::kNoNode);
  }
}

TEST_F(NetworkFixture, UnknownInterfaceThrows) {
  EXPECT_THROW(static_cast<void>(network.interface(99)), std::out_of_range);
}

TEST_F(NetworkFixture, NodesListedInAttachOrder) {
  EXPECT_EQ(network.nodes(), (std::vector<NodeId>{1, 2, 3}));
}

TEST_F(NetworkFixture, InterfaceRecoveryRestoresDelivery) {
  network.interface(2).set_rx(false);
  network.send(msg(1, 2, "lost"));
  simulator.run_until(seconds(1));
  network.interface(2).set_rx(true);
  network.send(msg(1, 2, "delivered"));
  simulator.run_until(seconds(2));
  ASSERT_EQ(inbox2.size(), 1u);
  EXPECT_EQ(inbox2[0].type_name(), "delivered");
}

TEST_F(NetworkFixture, MessageLossDropsApproximatelyTheConfiguredShare) {
  network.set_message_loss_rate(0.3);
  for (int i = 0; i < 2000; ++i) network.send(msg(1, 2, "lossy"));
  simulator.run_until(seconds(1));
  // ~70% should arrive; 3-sigma band for p=0.7, n=2000 is +-0.031.
  const double delivered = static_cast<double>(inbox2.size()) / 2000.0;
  EXPECT_NEAR(delivered, 0.7, 0.05);
  // Losses are at the receiver: every message was counted on the wire.
  EXPECT_EQ(network.counters().of_type("lossy"), 2000u);
}

TEST_F(NetworkFixture, MessageLossZeroDeliversEverything) {
  network.set_message_loss_rate(0.0);
  for (int i = 0; i < 100; ++i) network.send(msg(1, 2, "clean"));
  simulator.run_until(seconds(1));
  EXPECT_EQ(inbox2.size(), 100u);
}

TEST_F(NetworkFixture, MessageLossAffectsMulticastPerDelivery) {
  network.set_message_loss_rate(0.5);
  for (int i = 0; i < 500; ++i) {
    network.multicast(msg(1, 0, "announce"));
  }
  simulator.run_until(seconds(1));
  // Each of the two receivers loses independently.
  EXPECT_NEAR(static_cast<double>(inbox2.size()) / 500.0, 0.5, 0.08);
  EXPECT_NEAR(static_cast<double>(inbox3.size()) / 500.0, 0.5, 0.08);
  EXPECT_NE(inbox2.size(), inbox3.size());  // independent draws
}

TEST_F(NetworkFixture, MessageLossIsDeterministicPerSeed) {
  const auto run = [] {
    sim::Simulator s(123);
    Network n(s);
    n.set_message_loss_rate(0.4);
    std::size_t received = 0;
    n.attach(1, [](const Message&) {});
    n.attach(2, [&](const Message&) { ++received; });
    for (int i = 0; i < 200; ++i) {
      Message m;
      m.src = 1;
      m.dst = 2;
      m.type = sdcm::net::MessageType::intern("x");
      n.send(m);
    }
    s.run_until(seconds(1));
    return received;
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace sdcm::net

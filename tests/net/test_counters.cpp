#include "sdcm/net/message.hpp"

#include <gtest/gtest.h>

namespace sdcm::net {
namespace {

Message make(std::string_view type, MessageClass klass) {
  Message m;
  m.src = 1;
  m.dst = 2;
  m.type = MessageType::intern(type);
  m.klass = klass;
  return m;
}

TEST(Counters, CountsByClassAndType) {
  MessageCounters c;
  c.count(make("notify", MessageClass::kUpdate));
  c.count(make("notify", MessageClass::kUpdate));
  c.count(make("renew", MessageClass::kControl));
  c.count(make("tcp.syn", MessageClass::kTransport));

  EXPECT_EQ(c.of_class(MessageClass::kUpdate), 2u);
  EXPECT_EQ(c.of_class(MessageClass::kControl), 1u);
  EXPECT_EQ(c.of_class(MessageClass::kDiscovery), 0u);
  EXPECT_EQ(c.of_class(MessageClass::kTransport), 1u);
  EXPECT_EQ(c.of_type("notify"), 2u);
  EXPECT_EQ(c.of_type("unknown"), 0u);
  EXPECT_EQ(c.total(), 4u);
}

TEST(Counters, DiscoveryLayerTotalExcludesTransport) {
  MessageCounters c;
  c.count(make("a", MessageClass::kUpdate));
  c.count(make("b", MessageClass::kDiscovery));
  c.count(make("tcp.syn", MessageClass::kTransport));
  c.count(make("tcp.ack", MessageClass::kTransport));
  EXPECT_EQ(c.discovery_layer_total(), 2u);
}

TEST(Counters, ResetClearsEverything) {
  MessageCounters c;
  c.count(make("a", MessageClass::kUpdate));
  c.reset();
  EXPECT_EQ(c.total(), 0u);
  EXPECT_EQ(c.of_type("a"), 0u);
  EXPECT_TRUE(c.by_type().empty());
}

TEST(Counters, ByTypeIterationIsSorted) {
  MessageCounters c;
  c.count(make("zeta", MessageClass::kControl));
  c.count(make("alpha", MessageClass::kControl));
  c.count(make("mid", MessageClass::kControl));
  std::vector<std::string> keys;
  for (const auto& [k, v] : c.by_type()) keys.push_back(k);
  EXPECT_EQ(keys, (std::vector<std::string>{"alpha", "mid", "zeta"}));
}

TEST(Counters, ClassNames) {
  EXPECT_EQ(to_string(MessageClass::kUpdate), "update");
  EXPECT_EQ(to_string(MessageClass::kTransport), "transport");
}

TEST(Counters, BytesUseExplicitSizeOrClassDefault) {
  MessageCounters c;
  Message sized = make("big", MessageClass::kUpdate);
  sized.bytes = 1000;
  c.count(sized);
  c.count(make("ack", MessageClass::kControl));  // default 48
  EXPECT_EQ(c.bytes_of_class(MessageClass::kUpdate), 1000u);
  EXPECT_EQ(c.bytes_of_class(MessageClass::kControl), 48u);
  EXPECT_EQ(c.bytes_total(), 1048u);
}

TEST(Counters, DefaultBytesPerClass) {
  EXPECT_EQ(default_bytes(MessageClass::kUpdate), 320u);
  EXPECT_EQ(default_bytes(MessageClass::kControl), 48u);
  EXPECT_EQ(default_bytes(MessageClass::kDiscovery), 96u);
  EXPECT_EQ(default_bytes(MessageClass::kTransport), 40u);
}

TEST(Counters, ResetClearsBytes) {
  MessageCounters c;
  c.count(make("a", MessageClass::kUpdate));
  c.reset();
  EXPECT_EQ(c.bytes_total(), 0u);
}

TEST(MessageEnvelope, PayloadRoundTrip) {
  struct Payload {
    int x;
  };
  Message m;
  m.payload = Payload{41};
  EXPECT_EQ(m.as<Payload>().x, 41);
}

}  // namespace
}  // namespace sdcm::net

// MessageType atom table and Payload storage-mode semantics - the
// envelope half of the node/message API redesign. The atom table is
// process-global and append-only, so every test interns names under a
// test-local prefix instead of asserting absolute counts.

#include "sdcm/net/message_type.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <typeinfo>
#include <unordered_set>
#include <vector>

#include "sdcm/net/payload.hpp"

namespace sdcm::net {
namespace {

TEST(MessageType, DefaultIsTheEmptyAtom) {
  const MessageType t;
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.id(), 0u);
  EXPECT_EQ(t.str(), "");
  EXPECT_EQ(t, MessageType::intern(""));
}

TEST(MessageType, InternIsIdempotentAndRoundTrips) {
  const auto a = MessageType::intern("test.atoms.alpha");
  const auto b = MessageType::intern("test.atoms.alpha");
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.id(), b.id());
  EXPECT_EQ(a.str(), "test.atoms.alpha");
  EXPECT_FALSE(a.empty());
}

TEST(MessageType, LookupNeverCreates) {
  const auto before = MessageType::count();
  EXPECT_EQ(MessageType::lookup("test.atoms.never-interned"), std::nullopt);
  EXPECT_EQ(MessageType::count(), before);
  const auto minted = MessageType::intern("test.atoms.minted");
  const auto found = MessageType::lookup("test.atoms.minted");
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(*found, minted);
}

TEST(MessageType, AtReconstructsEveryDenseId) {
  const auto minted = MessageType::intern("test.atoms.at");
  ASSERT_LT(minted.id(), MessageType::count());
  EXPECT_EQ(MessageType::at(minted.id()), minted);
  // Every id below count() is a valid atom with a stable spelling.
  std::unordered_set<std::string_view> spellings;
  for (MessageType::Id id = 0; id < MessageType::count(); ++id) {
    EXPECT_TRUE(spellings.insert(MessageType::at(id).str()).second);
  }
}

TEST(MessageType, OrdersByInternOrderNotSpelling) {
  const auto zed = MessageType::intern("test.atoms.zzz-first");
  const auto ant = MessageType::intern("test.atoms.aaa-second");
  EXPECT_LT(zed, ant);  // interned first, despite sorting later by name
}

TEST(MessageType, SpellingComparisonsWork) {
  const auto t = MessageType::intern("test.atoms.spelling");
  EXPECT_TRUE(t == "test.atoms.spelling");
  EXPECT_TRUE("test.atoms.spelling" == t);
  EXPECT_TRUE(t != "test.atoms.other");
  EXPECT_TRUE("test.atoms.other" != t);
}

TEST(MessageType, HashableAsUnorderedKey) {
  std::unordered_set<MessageType> set;
  set.insert(MessageType::intern("test.atoms.hash"));
  set.insert(MessageType::intern("test.atoms.hash"));
  EXPECT_EQ(set.size(), 1u);
  EXPECT_TRUE(set.contains(MessageType::intern("test.atoms.hash")));
}

struct SmallPod {
  std::uint64_t a = 0;
  std::uint32_t b = 0;
};
static_assert(Payload::stored_inline<SmallPod>);

struct BigPod {
  unsigned char bytes[Payload::kInlineCapacity + 8] = {};
};
static_assert(!Payload::stored_inline<BigPod>);
static_assert(!Payload::stored_inline<std::string>);

TEST(Payload, EmptyHasNoValueAndThrowsOnRead) {
  const Payload p;
  EXPECT_FALSE(p.has_value());
  EXPECT_THROW(static_cast<void>(p.as<int>()), std::bad_cast);
}

TEST(Payload, InlinePodRoundTrips) {
  Payload p = SmallPod{7, 9};
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p.as<SmallPod>().a, 7u);
  EXPECT_EQ(p.as<SmallPod>().b, 9u);
}

TEST(Payload, InlineCopiesAreIndependent) {
  const Payload a = SmallPod{1, 2};
  const Payload b = a;  // memcpy of the inline buffer
  EXPECT_NE(&a.as<SmallPod>(), &b.as<SmallPod>());
  EXPECT_EQ(b.as<SmallPod>().a, 1u);
}

TEST(Payload, LargeOrNonTrivialPayloadsShareStorage) {
  const Payload a = std::string(200, 'x');
  const Payload b = a;  // refcount bump, not a deep copy
  EXPECT_EQ(&a.as<std::string>(), &b.as<std::string>());
  EXPECT_EQ(b.as<std::string>().size(), 200u);

  const Payload big = BigPod{};
  const Payload big2 = big;
  EXPECT_EQ(&big.as<BigPod>(), &big2.as<BigPod>());
}

TEST(Payload, TypeMismatchThrowsBadCast) {
  const Payload p = SmallPod{1, 2};
  EXPECT_THROW(static_cast<void>(p.as<int>()), std::bad_cast);
  EXPECT_THROW(static_cast<void>(p.as<std::string>()), std::bad_cast);
}

TEST(Payload, ReassignmentSwitchesStorageModes) {
  Payload p = std::string("shared first");
  p = SmallPod{3, 4};  // shared -> inline must drop the shared_ptr
  EXPECT_EQ(p.as<SmallPod>().a, 3u);
  EXPECT_THROW(static_cast<void>(p.as<std::string>()), std::bad_cast);
  p = std::string("shared again");  // inline -> shared
  EXPECT_EQ(p.as<std::string>(), "shared again");
  EXPECT_THROW(static_cast<void>(p.as<SmallPod>()), std::bad_cast);
}

TEST(Payload, ResetClearsTheValue) {
  Payload p = SmallPod{1, 2};
  p.reset();
  EXPECT_FALSE(p.has_value());
  EXPECT_THROW(static_cast<void>(p.as<SmallPod>()), std::bad_cast);
}

}  // namespace
}  // namespace sdcm::net

#include "sdcm/net/failure_model.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <map>
#include <set>
#include <vector>

namespace sdcm::net {
namespace {

using sim::seconds;

const std::array<NodeId, 7> kNodes = {1, 2, 3, 4, 5, 6, 7};

TEST(FailurePlanner, ZeroLambdaYieldsNoFailures) {
  sim::Random rng(1);
  FailurePlanConfig cfg;
  cfg.lambda = 0.0;
  EXPECT_TRUE(plan_failures(kNodes, cfg, rng).empty());
}

TEST(FailurePlanner, OneEpisodePerNode) {
  sim::Random rng(2);
  FailurePlanConfig cfg;
  cfg.lambda = 0.3;
  const auto plan = plan_failures(kNodes, cfg, rng);
  ASSERT_EQ(plan.size(), kNodes.size());
  std::set<NodeId> seen;
  for (const auto& ep : plan) seen.insert(ep.node);
  EXPECT_EQ(seen.size(), kNodes.size());
}

TEST(FailurePlanner, DurationIsLambdaTimesHorizon) {
  // The paper's Section 6.2 example: lambda = 0.15 -> 810 s outages.
  sim::Random rng(3);
  FailurePlanConfig cfg;
  cfg.lambda = 0.15;
  for (const auto& ep : plan_failures(kNodes, cfg, rng)) {
    EXPECT_EQ(ep.duration, seconds(810));
  }
}

TEST(FailurePlanner, FitInsideEpisodesEndWithinHorizon) {
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    sim::Random rng(seed);
    for (const double lambda : {0.05, 0.5, 0.9}) {
      FailurePlanConfig cfg;
      cfg.lambda = lambda;
      cfg.placement = FailurePlacement::kFitInside;
      for (const auto& ep : plan_failures(kNodes, cfg, rng)) {
        EXPECT_GE(ep.start, seconds(100));
        EXPECT_LE(ep.end(), seconds(5400));
      }
    }
  }
}

TEST(FailurePlanner, TruncatedStartsSpanTheFullPaperWindow) {
  // Section 5 Step 2 taken literally: starts anywhere in [100 s, 5400 s];
  // late episodes extend past the horizon (the node never recovers
  // in-run).
  bool some_end_past_horizon = false;
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    sim::Random rng(seed);
    for (const double lambda : {0.05, 0.5, 0.9}) {
      FailurePlanConfig cfg;
      cfg.lambda = lambda;
      cfg.placement = FailurePlacement::kTruncated;
      for (const auto& ep : plan_failures(kNodes, cfg, rng)) {
        EXPECT_GE(ep.start, seconds(100));
        EXPECT_LE(ep.start, seconds(5400));
        some_end_past_horizon =
            some_end_past_horizon || ep.end() > seconds(5400);
      }
    }
  }
  EXPECT_TRUE(some_end_past_horizon);
}

TEST(FailurePlanner, AllThreeModesOccur) {
  std::set<FailureMode> seen;
  for (std::uint64_t seed = 0; seed < 30 && seen.size() < 3; ++seed) {
    sim::Random rng(seed);
    FailurePlanConfig cfg;
    cfg.lambda = 0.2;
    for (const auto& ep : plan_failures(kNodes, cfg, rng)) {
      seen.insert(ep.mode);
    }
  }
  EXPECT_TRUE(seen.contains(FailureMode::kTransmitter));
  EXPECT_TRUE(seen.contains(FailureMode::kReceiver));
  EXPECT_TRUE(seen.contains(FailureMode::kBoth));
}

TEST(FailurePlanner, CoversHelper) {
  FailureEpisode ep;
  ep.start = seconds(100);
  ep.duration = seconds(50);
  EXPECT_FALSE(ep.covers(seconds(99)));
  EXPECT_TRUE(ep.covers(seconds(100)));
  EXPECT_TRUE(ep.covers(seconds(149)));
  EXPECT_FALSE(ep.covers(seconds(150)));
}

TEST(ApplyFailures, FlipsInterfacesAtEpisodeBounds) {
  sim::Simulator simulator(4);
  Network network(simulator);
  network.attach(1, [](const Message&) {});
  FailureEpisode ep;
  ep.node = 1;
  ep.mode = FailureMode::kTransmitter;
  ep.start = seconds(100);
  ep.duration = seconds(50);
  apply_failures(simulator, network, std::array{ep});

  simulator.run_until(seconds(99));
  EXPECT_TRUE(network.interface(1).tx_up());
  simulator.run_until(seconds(120));
  EXPECT_FALSE(network.interface(1).tx_up());
  EXPECT_TRUE(network.interface(1).rx_up());  // tx-only episode
  simulator.run_until(seconds(200));
  EXPECT_TRUE(network.interface(1).tx_up());
}

TEST(ApplyFailures, BothModeTakesNodeOffline) {
  sim::Simulator simulator(5);
  Network network(simulator);
  network.attach(1, [](const Message&) {});
  FailureEpisode ep;
  ep.node = 1;
  ep.mode = FailureMode::kBoth;
  ep.start = seconds(10);
  ep.duration = seconds(10);
  apply_failures(simulator, network, std::array{ep});
  simulator.run_until(seconds(15));
  EXPECT_FALSE(network.interface(1).tx_up());
  EXPECT_FALSE(network.interface(1).rx_up());
  simulator.run_until(seconds(25));
  EXPECT_TRUE(network.interface(1).tx_up());
  EXPECT_TRUE(network.interface(1).rx_up());
}

TEST(ApplyFailures, EmitsTraceRecords) {
  sim::Simulator simulator(6);
  Network network(simulator);
  network.attach(1, [](const Message&) {});
  FailureEpisode ep;
  ep.node = 1;
  ep.mode = FailureMode::kReceiver;
  ep.start = seconds(10);
  ep.duration = seconds(10);
  apply_failures(simulator, network, std::array{ep});
  simulator.run_until(seconds(30));
  EXPECT_EQ(simulator.trace().count_event("interface.down"), 1u);
  EXPECT_EQ(simulator.trace().count_event("interface.up"), 1u);
}

TEST(ApplyFailures, NoneModeIsIgnored) {
  sim::Simulator simulator(7);
  Network network(simulator);
  network.attach(1, [](const Message&) {});
  FailureEpisode ep;
  ep.node = 1;
  ep.mode = FailureMode::kNone;
  ep.start = seconds(10);
  ep.duration = seconds(10);
  apply_failures(simulator, network, std::array{ep});
  simulator.run_until(seconds(30));
  EXPECT_TRUE(simulator.trace().records().empty());
}

TEST(FailureModeNames, ToString) {
  EXPECT_EQ(to_string(FailureMode::kTransmitter), "tx");
  EXPECT_EQ(to_string(FailureMode::kReceiver), "rx");
  EXPECT_EQ(to_string(FailureMode::kBoth), "tx+rx");
}

TEST(FailurePlanner, FitInsideEpisodesNeverOverlapPerNode) {
  // Property sweep: multi-episode fit-inside plans must be disjoint per
  // node, ordered, inside the window, and preserve the lambda * horizon
  // downtime budget (up to one microsecond of integer division slack
  // per episode). lambda = 0.99 stresses the per-slice duration cap.
  for (std::uint64_t seed = 0; seed < 25; ++seed) {
    for (const double lambda : {0.15, 0.5, 0.9, 0.99}) {
      for (const int episodes : {1, 2, 3, 5}) {
        sim::Random rng(seed * 101 + 7);
        FailurePlanConfig cfg;
        cfg.lambda = lambda;
        cfg.placement = FailurePlacement::kFitInside;
        cfg.episodes = episodes;
        std::map<NodeId, std::vector<FailureEpisode>> per_node;
        for (const auto& ep : plan_failures(kNodes, cfg, rng)) {
          per_node[ep.node].push_back(ep);
        }
        EXPECT_EQ(per_node.size(), kNodes.size());
        for (auto& [node, eps] : per_node) {
          ASSERT_EQ(eps.size(), static_cast<std::size_t>(episodes));
          std::sort(eps.begin(), eps.end(),
                    [](const FailureEpisode& a, const FailureEpisode& b) {
                      return a.start < b.start;
                    });
          sim::SimDuration down = 0;
          for (std::size_t i = 0; i < eps.size(); ++i) {
            EXPECT_GE(eps[i].start, cfg.min_start)
                << "seed=" << seed << " lambda=" << lambda;
            EXPECT_LE(eps[i].end(), cfg.horizon)
                << "seed=" << seed << " lambda=" << lambda;
            if (i > 0) {
              EXPECT_LE(eps[i - 1].end(), eps[i].start)
                  << "overlap: seed=" << seed << " lambda=" << lambda
                  << " episodes=" << episodes << " node=" << node;
            }
            down += eps[i].duration;
          }
          if (lambda <= 0.9) {
            const auto budget = static_cast<sim::SimDuration>(
                lambda * static_cast<double>(cfg.horizon));
            EXPECT_NEAR(static_cast<double>(down),
                        static_cast<double>(budget),
                        static_cast<double>(episodes))
                << "seed=" << seed << " lambda=" << lambda;
          }
        }
      }
    }
  }
}

TEST(ApplyFailures, OverlappingEpisodesStayDownUnderRefcounting) {
  // Two overlapping tx outages on node 1: [100 s, 200 s) and
  // [150 s, 250 s). The union is down until 250 s.
  const auto make_plan = [] {
    FailureEpisode first;
    first.node = 1;
    first.mode = FailureMode::kTransmitter;
    first.start = seconds(100);
    first.duration = seconds(100);
    FailureEpisode second = first;
    second.start = seconds(150);
    return std::array{first, second};
  };

  // Legacy boolean application: the first episode's recovery at 200 s
  // re-enables the interface while the second still covers it (the bug).
  sim::Simulator legacy_sim(8);
  Network legacy_net(legacy_sim);
  legacy_net.attach(1, [](const Message&) {});
  apply_failures(legacy_sim, legacy_net, make_plan(),
                 FailureApplication::kLegacyBoolean);
  legacy_sim.run_until(seconds(210));
  EXPECT_TRUE(legacy_net.interface(1).tx_up());
  legacy_sim.run_until(seconds(260));

  // Refcounted application: the interface only comes back once every
  // covering episode has ended.
  sim::Simulator fixed_sim(8);
  Network fixed_net(fixed_sim);
  fixed_net.attach(1, [](const Message&) {});
  apply_failures(fixed_sim, fixed_net, make_plan(),
                 FailureApplication::kRefcounted);
  fixed_sim.run_until(seconds(210));
  EXPECT_FALSE(fixed_net.interface(1).tx_up());
  fixed_sim.run_until(seconds(260));
  EXPECT_TRUE(fixed_net.interface(1).tx_up());

  // Both applications emit the same trace records (the fix changes
  // interface state transitions, not the log), so golden fingerprints
  // are unaffected.
  EXPECT_EQ(legacy_sim.trace().records().size(),
            fixed_sim.trace().records().size());
}

}  // namespace
}  // namespace sdcm::net

#include "sdcm/frodo/acked_channel.hpp"

#include <gtest/gtest.h>

namespace sdcm::frodo {
namespace {

using sim::seconds;

struct AckedChannelFixture : ::testing::Test {
  sim::Simulator simulator{42};
  net::Network network{simulator};
  AckedChannel channel{simulator, network};
  int received = 0;

  void SetUp() override {
    network.attach(1, [](const net::Message&) {});
    network.attach(2, [this](const net::Message&) { ++received; });
  }

  net::Message make(std::string_view type = "frodo.test") {
    net::Message m;
    m.src = 1;
    m.dst = 2;
    m.type = net::MessageType::intern(type);
    m.klass = net::MessageClass::kUpdate;
    return m;
  }
};

TEST_F(AckedChannelFixture, TokensAreUnique) {
  const auto a = channel.allocate_token();
  const auto b = channel.allocate_token();
  EXPECT_NE(a, b);
  EXPECT_NE(a, 0u);
}

TEST_F(AckedChannelFixture, AckStopsRetransmission) {
  const auto token = channel.allocate_token();
  bool acked = false;
  channel.send(token, make(), {3, seconds(2)}, [&] { acked = true; });
  simulator.run_until(seconds(1));
  EXPECT_EQ(received, 1);
  EXPECT_TRUE(channel.acknowledge(token));
  EXPECT_TRUE(acked);
  simulator.run_until(seconds(30));
  EXPECT_EQ(received, 1);  // no retransmissions after the ack
}

TEST_F(AckedChannelFixture, Srn1RetransmitsUpToLimitThenFails) {
  network.interface(2).set_rx(false);
  const auto token = channel.allocate_token();
  bool failed = false;
  sim::SimTime failed_at = -1;
  channel.send(token, make(), {3, seconds(2)}, {}, [&] {
    failed = true;
    failed_at = simulator.now();
  });
  simulator.run_until(seconds(30));
  EXPECT_TRUE(failed);
  // Initial copy + 3 retries at 2 s spacing, fail one spacing later: 8 s.
  EXPECT_EQ(failed_at, seconds(8));
  EXPECT_EQ(network.counters().of_type("frodo.test"), 4u);
  EXPECT_FALSE(channel.pending(token));
}

TEST_F(AckedChannelFixture, RetransmissionsKeepTheAccountingClass) {
  // FRODO retransmissions are discovery-layer messages and count fully
  // (unlike TCP's, which the paper's metrics ignore).
  network.interface(2).set_rx(false);
  const auto token = channel.allocate_token();
  channel.send(token, make(), {3, seconds(2)});
  simulator.run_until(seconds(30));
  EXPECT_EQ(network.counters().of_class(net::MessageClass::kUpdate), 4u);
}

TEST_F(AckedChannelFixture, Src1UnlimitedKeepsRetrying) {
  network.interface(2).set_rx(false);
  const auto token = channel.allocate_token();
  bool failed = false;
  channel.send(token, make(), {-1, seconds(5)}, {}, [&] { failed = true; });
  simulator.run_until(seconds(120));
  EXPECT_FALSE(failed);
  EXPECT_TRUE(channel.pending(token));
  // 0, 5, 10, ..., 120 -> 25 copies.
  EXPECT_EQ(network.counters().of_type("frodo.test"), 25u);
  // Recovery: receiver comes back, next copy is delivered.
  network.interface(2).set_rx(true);
  simulator.run_until(seconds(130));
  EXPECT_GE(received, 1);
}

TEST_F(AckedChannelFixture, CancelStopsWithoutCallbacks) {
  network.interface(2).set_rx(false);
  const auto token = channel.allocate_token();
  bool failed = false;
  channel.send(token, make(), {3, seconds(2)}, {}, [&] { failed = true; });
  simulator.run_until(seconds(3));
  channel.cancel(token);
  simulator.run_until(seconds(30));
  EXPECT_FALSE(failed);
  EXPECT_LE(network.counters().of_type("frodo.test"), 2u);
}

TEST_F(AckedChannelFixture, LateAckIsIgnored) {
  const auto token = channel.allocate_token();
  channel.send(token, make(), {3, seconds(2)});
  simulator.run_until(seconds(1));
  EXPECT_TRUE(channel.acknowledge(token));
  EXPECT_FALSE(channel.acknowledge(token));  // duplicate
  EXPECT_FALSE(channel.acknowledge(9999));   // unknown
}

TEST_F(AckedChannelFixture, DeliveredCopyStillRetransmitsUntilAcked) {
  // Delivery alone is not success - only the ack settles the exchange
  // (the receiver's ack is a separate protocol message).
  const auto token = channel.allocate_token();
  channel.send(token, make(), {3, seconds(2)});
  simulator.run_until(seconds(5));
  EXPECT_GE(received, 2);  // retransmitted although delivered
  EXPECT_TRUE(channel.pending(token));
}

TEST_F(AckedChannelFixture, PendingCountTracksExchanges) {
  EXPECT_EQ(channel.pending_count(), 0u);
  const auto t1 = channel.allocate_token();
  const auto t2 = channel.allocate_token();
  channel.send(t1, make(), {3, seconds(2)});
  channel.send(t2, make(), {3, seconds(2)});
  EXPECT_EQ(channel.pending_count(), 2u);
  channel.acknowledge(t1);
  EXPECT_EQ(channel.pending_count(), 1u);
  channel.cancel(t2);
  EXPECT_EQ(channel.pending_count(), 0u);
}

}  // namespace
}  // namespace sdcm::frodo

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "sdcm/discovery/observer.hpp"
#include "sdcm/frodo/manager.hpp"
#include "sdcm/frodo/registry_node.hpp"
#include "sdcm/frodo/user.hpp"

namespace sdcm::frodo {
namespace {

using discovery::ServiceDescription;
using sim::seconds;

ServiceDescription printer_sd() {
  ServiceDescription sd;
  sd.id = 1;
  sd.device_type = "Printer";
  sd.service_type = "ColorPrinter";
  sd.attributes = {{"PaperSize", "A4"}};
  return sd;
}

Matching printer_req() { return Matching{"Printer", "ColorPrinter"}; }

/// The paper's topology (a): 1 300D Registry, 1 3D Manager, 5 3D Users.
struct ThreePartyFixture : ::testing::Test {
  sim::Simulator simulator{4242};
  net::Network network{simulator};
  discovery::ConsistencyObserver observer;
  std::unique_ptr<FrodoRegistryNode> registry;  // node 1
  std::unique_ptr<FrodoManager> manager;        // node 10
  std::vector<std::unique_ptr<FrodoUser>> users;  // nodes 11..

  void build(std::size_t n_users, FrodoConfig config = {},
             bool critical = false) {
    registry = std::make_unique<FrodoRegistryNode>(simulator, network, 1, 100,
                                                   config);
    manager = std::make_unique<FrodoManager>(simulator, network, 10,
                                             DeviceClass::k3D, config,
                                             &observer);
    manager->add_service(printer_sd(), critical);
    for (std::size_t i = 0; i < n_users; ++i) {
      users.push_back(std::make_unique<FrodoUser>(
          simulator, network, static_cast<NodeId>(11 + i), DeviceClass::k3D,
          printer_req(), config, &observer));
    }
    registry->start();
    manager->start();
    for (auto& u : users) u->start();
  }
};

TEST_F(ThreePartyFixture, DiscoveryCompletesWithinPaperWindow) {
  build(5);
  simulator.run_until(seconds(100));
  EXPECT_TRUE(registry->is_central());
  EXPECT_TRUE(manager->is_registered(1));
  EXPECT_TRUE(registry->has_registration(1));
  for (const auto& u : users) {
    ASSERT_TRUE(u->cached().has_value());
    EXPECT_EQ(u->cached()->version, 1u);
    EXPECT_TRUE(u->is_subscribed());
    EXPECT_FALSE(u->two_party());
  }
  EXPECT_EQ(registry->subscription_count(1), 5u);
  EXPECT_EQ(registry->interest_count(), 5u);
}

TEST_F(ThreePartyFixture, UpdatePropagatesViaCentral) {
  build(5);
  simulator.run_until(seconds(100));
  manager->change_service(1, {{"PaperSize", "Letter"}});
  simulator.run_until(seconds(200));
  for (const auto& u : users) {
    ASSERT_TRUE(u->cached().has_value());
    EXPECT_EQ(u->cached()->version, 2u);
    EXPECT_EQ(u->cached()->attributes.at("PaperSize"), "Letter");
  }
}

TEST_F(ThreePartyFixture, UpdateTransactionIsNPlus2Messages) {
  // Table 2: FRODO propagates N + 2 update messages - ServiceUpdate
  // Manager->Central, UpdateAck Central->Manager, and N ServiceUpdates
  // Central->Users. User acks are control traffic (DESIGN.md decision 2).
  build(5);
  simulator.run_until(seconds(100));
  EXPECT_EQ(network.counters().of_class(net::MessageClass::kUpdate), 0u);
  manager->change_service(1);
  simulator.run_until(seconds(200));
  EXPECT_EQ(network.counters().of_class(net::MessageClass::kUpdate), 7u);
  EXPECT_EQ(network.counters().of_type(msg::kServiceUpdate), 6u);
  EXPECT_EQ(network.counters().of_type(msg::kUpdateAck), 1u);
  EXPECT_EQ(network.counters().of_type(msg::kClientUpdateAck), 5u);
  // FRODO uses no TCP at all (Table 3).
  EXPECT_EQ(network.counters().of_class(net::MessageClass::kTransport), 0u);
}

TEST_F(ThreePartyFixture, UpdateLatencyIsMilliseconds) {
  // UDP + direct propagation: consistency in well under a second at
  // lambda = 0 (FRODO's responsiveness edge in Figure 5).
  build(5);
  simulator.run_until(seconds(100));
  manager->change_service(1);
  simulator.run_until(seconds(101));
  const auto change = observer.change_time(2);
  ASSERT_TRUE(change.has_value());
  for (const auto& u : users) {
    const auto reached = observer.reach_time(u->id(), 2);
    ASSERT_TRUE(reached.has_value());
    EXPECT_LT(*reached - *change, sim::milliseconds(100));
  }
}

TEST_F(ThreePartyFixture, LeasesSurviveTheFullRun) {
  build(1);
  simulator.run_until(seconds(5400));
  EXPECT_TRUE(registry->has_registration(1));
  EXPECT_EQ(registry->subscription_count(1), 1u);
  EXPECT_TRUE(users[0]->is_subscribed());
}

TEST_F(ThreePartyFixture, RenewalsAreNotAcknowledged) {
  // Figure 1 shows SubscriptionRenew without an ack: renewals flow, but
  // no ack or resubscription traffic answers them in steady state.
  build(1);
  simulator.run_until(seconds(2000));
  EXPECT_GE(network.counters().of_type(msg::kSubscriptionRenew), 2u);
  EXPECT_EQ(network.counters().of_type(msg::kResubscribeRequest), 0u);
}

TEST_F(ThreePartyFixture, SubscriptionExpiresWithoutRenewal) {
  build(1);
  simulator.run_until(seconds(100));
  ASSERT_EQ(registry->subscription_count(1), 1u);
  network.interface(11).set_tx(false);  // renewals stop reaching the Central
  simulator.run_until(seconds(3000));
  EXPECT_EQ(registry->subscription_count(1), 0u);
}

TEST_F(ThreePartyFixture, CriticalUpdateUsesSrc1AndSrc2) {
  FrodoConfig config;
  build(1, config, /*critical=*/true);
  simulator.run_until(seconds(100));

  // The user misses v2 entirely (receiver down) but its transmitter still
  // renews the subscription, so the Central keeps retrying (SRC1 has no
  // retransmission limit) until the receiver recovers.
  network.interface(11).set_rx(false);
  manager->change_service(1);
  simulator.run_until(seconds(300));
  EXPECT_EQ(users[0]->cached()->version, 1u);
  network.interface(11).set_rx(true);
  simulator.run_until(seconds(400));
  EXPECT_EQ(users[0]->cached()->version, 2u);

  // SRC2: two further changes while the receiver is down again; on
  // recovery the user must obtain the *complete* history.
  network.interface(11).set_rx(false);
  manager->change_service(1);
  simulator.run_until(seconds(500));
  manager->change_service(1);
  simulator.run_until(seconds(600));
  network.interface(11).set_rx(true);
  simulator.run_until(seconds(1000));
  EXPECT_EQ(users[0]->cached()->version, 4u);
  EXPECT_TRUE(users[0]->versions_seen().contains(3));  // gap recovered
}

TEST_F(ThreePartyFixture, InterestNotificationSkipsKnownVersions) {
  // Users already hold v1 when they register interest; the Central must
  // not send a redundant notification (count preservation at lambda = 0).
  build(5);
  simulator.run_until(seconds(100));
  EXPECT_EQ(network.counters().of_type(msg::kServiceNotification), 0u);
}

TEST_F(ThreePartyFixture, LateUserIsNotifiedOfExistingRegistration) {
  // FRODO's PR1 improvement over Jini: an interest registered after the
  // service is already there gets an immediate notification when it holds
  // nothing (known_version = 0)... via the search path or notification -
  // either way the late user converges quickly.
  build(1);
  simulator.run_until(seconds(100));
  auto late = std::make_unique<FrodoUser>(simulator, network, 20,
                                          DeviceClass::k3D, printer_req(),
                                          FrodoConfig{}, &observer);
  late->start();
  simulator.run_until(seconds(200));
  ASSERT_TRUE(late->cached().has_value());
  EXPECT_EQ(late->cached()->version, 1u);
  EXPECT_TRUE(late->is_subscribed());
}

TEST_F(ThreePartyFixture, TechniquesMatchTable2) {
  const auto t = FrodoRegistryNode::techniques();
  for (const auto technique :
       {discovery::RecoveryTechnique::kSRN1, discovery::RecoveryTechnique::kSRN2,
        discovery::RecoveryTechnique::kSRC1, discovery::RecoveryTechnique::kSRC2,
        discovery::RecoveryTechnique::kPR1, discovery::RecoveryTechnique::kPR3,
        discovery::RecoveryTechnique::kPR4, discovery::RecoveryTechnique::kPR5}) {
    EXPECT_TRUE(t.contains(technique));
  }
  EXPECT_FALSE(t.contains(discovery::RecoveryTechnique::kPR2));
}

}  // namespace
}  // namespace sdcm::frodo

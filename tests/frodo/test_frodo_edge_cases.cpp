#include <gtest/gtest.h>

#include <array>
#include <memory>

#include "sdcm/discovery/observer.hpp"
#include "sdcm/frodo/manager.hpp"
#include "sdcm/frodo/registry_node.hpp"
#include "sdcm/frodo/user.hpp"
#include "sdcm/net/failure_model.hpp"

namespace sdcm::frodo {
namespace {

using discovery::ServiceDescription;
using sim::seconds;

ServiceDescription printer_sd() {
  ServiceDescription sd;
  sd.id = 1;
  sd.device_type = "Printer";
  sd.service_type = "ColorPrinter";
  return sd;
}

struct EdgeFixture : ::testing::Test {
  sim::Simulator simulator{808};
  net::Network network{simulator};
  discovery::ConsistencyObserver observer;
};

TEST_F(EdgeFixture, ThreeCManagerBehavesLikeThreeD) {
  // Section 5 Step 1: "we do not include 3C Managers because they behave
  // exactly the same as 3D Managers during consistency maintenance."
  FrodoRegistryNode registry(simulator, network, 1, 100);
  FrodoManager manager(simulator, network, 10, DeviceClass::k3C,
                       FrodoConfig{}, &observer);
  manager.add_service(printer_sd());
  FrodoUser user(simulator, network, 11, DeviceClass::k3D,
                 Matching{"Printer", "ColorPrinter"}, FrodoConfig{},
                 &observer);
  registry.start();
  manager.start();
  user.start();
  simulator.schedule_at(seconds(500), [&] { manager.change_service(1); });
  simulator.run_until(seconds(600));
  EXPECT_FALSE(user.two_party());  // 3C => 3-party subscription
  EXPECT_EQ(user.cached()->version, 2u);
  EXPECT_EQ(registry.subscription_count(1), 1u);
}

TEST_F(EdgeFixture, BackupTakeoverPreservesSubscriptionsAndRegistrations) {
  FrodoRegistryNode registry(simulator, network, 1, 100);
  FrodoRegistryNode backup(simulator, network, 2, 90);
  FrodoManager manager(simulator, network, 10, DeviceClass::k3D,
                       FrodoConfig{}, &observer);
  manager.add_service(printer_sd());
  FrodoUser user(simulator, network, 11, DeviceClass::k3D,
                 Matching{"Printer", "ColorPrinter"}, FrodoConfig{},
                 &observer);
  registry.start();
  backup.start();
  manager.start();
  user.start();
  simulator.run_until(seconds(100));
  ASSERT_TRUE(registry.has_registration(1));
  ASSERT_EQ(registry.subscription_count(1), 1u);

  // Central dies for the rest of the run; the Backup must take over WITH
  // the synced state and continue propagating updates.
  net::FailureEpisode ep;
  ep.node = 1;
  ep.mode = net::FailureMode::kBoth;
  ep.start = seconds(150);
  ep.duration = seconds(5250);
  net::apply_failures(simulator, network, std::array{ep});

  // Backup monitor ticks every 1200 s; silence exceeds the 2-period
  // threshold on the tick at ~3607 s.
  simulator.run_until(seconds(3700));
  ASSERT_TRUE(backup.is_central());
  EXPECT_TRUE(backup.has_registration(1));

  simulator.schedule_at(seconds(3600), [&] { manager.change_service(1); });
  simulator.run_until(seconds(5400));
  EXPECT_EQ(user.cached()->version, 2u);
  ASSERT_TRUE(observer.reach_time(11, 2).has_value());
}

TEST_F(EdgeFixture, SubscriptionToUnregisteredServiceSignalsPurge) {
  // A User subscribing for a service the Central does not hold receives
  // ServicePurged and keeps searching instead of looping.
  FrodoRegistryNode registry(simulator, network, 1, 100);
  FrodoUser user(simulator, network, 11, DeviceClass::k3D,
                 Matching{"Printer", "ColorPrinter"}, FrodoConfig{},
                 &observer);
  registry.start();
  user.start();
  simulator.run_until(seconds(600));
  EXPECT_FALSE(user.cached().has_value());
  EXPECT_FALSE(user.is_subscribed());
  // A Manager arriving late is still found by the periodic search/PR1.
  FrodoManager manager(simulator, network, 10, DeviceClass::k3D,
                       FrodoConfig{}, &observer);
  manager.add_service(printer_sd());
  manager.start();
  simulator.run_until(seconds(1400));
  ASSERT_TRUE(user.cached().has_value());
  EXPECT_TRUE(user.is_subscribed());
}

TEST_F(EdgeFixture, NotificationRequestIsVersionGated) {
  // Notifications fire only on registration events and on interests that
  // know less than the Registry holds - never on plain updates, which is
  // what keeps the lambda = 0 update transaction at exactly N + 2.
  FrodoRegistryNode registry(simulator, network, 1, 100);
  FrodoManager manager(simulator, network, 10, DeviceClass::k3D,
                       FrodoConfig{}, &observer);
  manager.add_service(printer_sd());
  FrodoUser user(simulator, network, 11, DeviceClass::k3D,
                 Matching{"Printer", "ColorPrinter"}, FrodoConfig{},
                 &observer);
  registry.start();
  manager.start();
  user.start();
  simulator.run_until(seconds(100));
  // Any notification so far is about version 1 (interest filed with
  // known_version = 0 before the search reply landed) - discovery
  // traffic, never update traffic.
  simulator.trace().for_each_event("frodo.notify.tx", [](const auto& r) {
    EXPECT_NE(r.detail.find("version=1"), std::string::npos) << r.detail;
  });

  // A change does NOT trigger interest notifications (the subscription
  // propagation covers subscribed users).
  const auto notifications_before =
      network.counters().of_type(msg::kServiceNotification);
  manager.change_service(1);
  simulator.run_until(seconds(200));
  EXPECT_EQ(network.counters().of_type(msg::kServiceNotification),
            notifications_before);
  EXPECT_EQ(user.cached()->version, 2u);

  // A brand-new user (knows nothing) IS notified about the existing
  // registration - FRODO's PR1 improvement over Jini. Suppress its own
  // search so the notification is the only possible source.
  FrodoConfig lazy;
  lazy.search_unicast_attempts = 0;
  lazy.search_retry = seconds(100000);
  FrodoUser latecomer(simulator, network, 12, DeviceClass::k3D,
                      Matching{"Printer", "ColorPrinter"}, lazy, &observer);
  latecomer.start();
  simulator.run_until(seconds(400));
  ASSERT_TRUE(latecomer.cached().has_value());
  EXPECT_EQ(latecomer.cached()->version, 2u);
  EXPECT_GT(network.counters().of_type(msg::kServiceNotification),
            notifications_before);
}

TEST_F(EdgeFixture, MulticastSearchFallbackWhenCentralNotResponding) {
  // Table 4 PR5: "Managers are rediscovered by querying the Registry or
  // by sending multicast queries when the Registry is not responding."
  FrodoRegistryNode registry(simulator, network, 1, 100);
  FrodoManager manager(simulator, network, 10, DeviceClass::k300D,
                       FrodoConfig{}, &observer);
  manager.add_service(printer_sd());
  FrodoUser user(simulator, network, 11, DeviceClass::k300D,
                 Matching{"Printer", "ColorPrinter"}, FrodoConfig{},
                 &observer);
  registry.start();
  manager.start();
  user.start();
  simulator.run_until(seconds(100));
  ASSERT_TRUE(user.is_subscribed());

  // Registry silently dies; the Manager keeps serving 2-party. The user
  // later purges the manager due to a ServicePurged... cannot happen with
  // the registry dead, so force a purge path: kill the manager long
  // enough for the central to purge it first, then kill the central, and
  // verify the user's multicast search finds the recovered manager
  // directly.
  net::FailureEpisode mgr_down;
  mgr_down.node = 10;
  mgr_down.mode = net::FailureMode::kBoth;
  mgr_down.start = seconds(200);
  mgr_down.duration = seconds(2700);
  net::FailureEpisode central_down;
  central_down.node = 1;
  central_down.mode = net::FailureMode::kBoth;
  central_down.start = seconds(2750);
  central_down.duration = seconds(2650);
  net::apply_failures(simulator, network,
                      std::array{mgr_down, central_down});
  simulator.schedule_at(seconds(2901), [&] { manager.change_service(1); });

  simulator.run_until(seconds(5400));
  // The user was told the service purged (~2705), searched the registry,
  // lost the registry too, fell back to multicast, and the recovered
  // manager answered directly with version 2.
  ASSERT_TRUE(user.cached().has_value());
  EXPECT_EQ(user.cached()->version, 2u);
  EXPECT_GE(network.counters().of_type(msg::kMulticastSearch), 1u);
}

TEST_F(EdgeFixture, ManagerServesSrc2HistoryDirectly) {
  // 2-party critical service: the user recovers a missed intermediate
  // version from the Manager's history.
  FrodoRegistryNode registry(simulator, network, 1, 100);
  FrodoManager manager(simulator, network, 10, DeviceClass::k300D,
                       FrodoConfig{}, &observer);
  manager.add_service(printer_sd(), /*critical=*/true);
  FrodoUser user(simulator, network, 11, DeviceClass::k300D,
                 Matching{"Printer", "ColorPrinter"}, FrodoConfig{},
                 &observer);
  registry.start();
  manager.start();
  user.start();
  simulator.run_until(seconds(100));

  network.interface(11).set_rx(false);
  manager.change_service(1);  // v2 - missed
  simulator.run_until(seconds(200));
  manager.change_service(1);  // v3 - SRC1 keeps retrying
  simulator.schedule_at(seconds(300),
                        [&] { network.interface(11).set_rx(true); });
  simulator.run_until(seconds(1000));
  EXPECT_EQ(user.cached()->version, 3u);
  EXPECT_TRUE(user.versions_seen().contains(2));  // gap recovered (SRC2)
  ASSERT_TRUE(observer.reach_time(11, 2).has_value());
}

TEST_F(EdgeFixture, ChangeBeforeCentralDiscoveredStillPropagates) {
  // The service changes during the discovery phase: consistency must
  // still be reached once the system assembles.
  FrodoRegistryNode registry(simulator, network, 1, 100);
  FrodoManager manager(simulator, network, 10, DeviceClass::k3D,
                       FrodoConfig{}, &observer);
  manager.add_service(printer_sd());
  FrodoUser user(simulator, network, 11, DeviceClass::k3D,
                 Matching{"Printer", "ColorPrinter"}, FrodoConfig{},
                 &observer);
  registry.start();
  manager.start();
  user.start();
  // Change at 1 s - before the 5 s election concludes.
  simulator.schedule_at(seconds(1), [&] { manager.change_service(1); });
  simulator.run_until(seconds(300));
  ASSERT_TRUE(user.cached().has_value());
  EXPECT_EQ(user.cached()->version, 2u);
}

TEST_F(EdgeFixture, TwoUsersDifferentRequirementsAreIsolated) {
  FrodoRegistryNode registry(simulator, network, 1, 100);
  FrodoManager manager(simulator, network, 10, DeviceClass::k3D,
                       FrodoConfig{}, &observer);
  manager.add_service(printer_sd());
  ServiceDescription camera;
  camera.id = 2;
  camera.device_type = "Camera";
  camera.service_type = "PanTilt";
  manager.add_service(camera);

  FrodoUser print_user(simulator, network, 11, DeviceClass::k3D,
                       Matching{"Printer", "ColorPrinter"}, FrodoConfig{},
                       &observer);
  FrodoUser cam_user(simulator, network, 12, DeviceClass::k3D,
                     Matching{"Camera", "PanTilt"}, FrodoConfig{}, &observer);
  registry.start();
  manager.start();
  print_user.start();
  cam_user.start();
  simulator.run_until(seconds(100));
  ASSERT_TRUE(print_user.cached().has_value());
  ASSERT_TRUE(cam_user.cached().has_value());
  EXPECT_EQ(print_user.cached()->device_type, "Printer");
  EXPECT_EQ(cam_user.cached()->device_type, "Camera");

  manager.change_service(2);  // only the camera changes
  simulator.run_until(seconds(200));
  EXPECT_EQ(cam_user.cached()->version, 2u);
  EXPECT_EQ(print_user.cached()->version, 1u);
}

}  // namespace
}  // namespace sdcm::frodo

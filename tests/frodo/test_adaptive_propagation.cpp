// Tests for the Alex-style adaptive update propagation extension
// (Section 4.2: invalidation vs data push vs adaptive switching).

#include <gtest/gtest.h>

#include "sdcm/discovery/observer.hpp"
#include "sdcm/frodo/manager.hpp"
#include "sdcm/frodo/registry_node.hpp"
#include "sdcm/frodo/user.hpp"

namespace sdcm::frodo {
namespace {

using discovery::ServiceDescription;
using sim::seconds;

ServiceDescription printer_sd() {
  ServiceDescription sd;
  sd.id = 1;
  sd.device_type = "Printer";
  sd.service_type = "ColorPrinter";
  sd.attributes = {{"PaperSize", "A4"}, {"Location", "Study"},
                   {"Color", "CMYK"}, {"Duplex", "yes"}};
  return sd;
}

struct AdaptiveFixture : ::testing::Test {
  sim::Simulator simulator{2121};
  net::Network network{simulator};
  discovery::ConsistencyObserver observer;
  std::unique_ptr<FrodoRegistryNode> registry;
  std::unique_ptr<FrodoManager> manager;
  std::unique_ptr<FrodoUser> user;

  void build(FrodoConfig config) {
    registry = std::make_unique<FrodoRegistryNode>(simulator, network, 1, 100,
                                                   config);
    manager = std::make_unique<FrodoManager>(simulator, network, 10,
                                             DeviceClass::k300D, config,
                                             &observer);
    manager->add_service(printer_sd());
    user = std::make_unique<FrodoUser>(simulator, network, 11,
                                       DeviceClass::k300D,
                                       Matching{"Printer", "ColorPrinter"},
                                       config, &observer);
    registry->start();
    manager->start();
    user->start();
  }
};

TEST_F(AdaptiveFixture, InvalidationModeDelaysByTheFetchWindow) {
  FrodoConfig config;
  config.propagation = UpdatePropagation::kInvalidation;
  config.invalidation_fetch_delay = seconds(120);
  build(config);
  simulator.run_until(seconds(100));
  manager->change_service(1, {{"PaperSize", "Letter"}});
  simulator.run_until(seconds(400));
  ASSERT_TRUE(user->cached().has_value());
  EXPECT_EQ(user->cached()->version, 2u);
  EXPECT_EQ(user->cached()->attributes.at("PaperSize"), "Letter");
  const auto reached = observer.reach_time(11, 2);
  ASSERT_TRUE(reached.has_value());
  // Consistency only after the deferred fetch (~120 s after the change).
  EXPECT_GT(*reached - *observer.change_time(2), seconds(119));
  EXPECT_LT(*reached - *observer.change_time(2), seconds(125));
}

TEST_F(AdaptiveFixture, InvalidationStubNeverCorruptsTheCache) {
  FrodoConfig config;
  config.propagation = UpdatePropagation::kInvalidation;
  build(config);
  simulator.run_until(seconds(100));
  manager->change_service(1, {{"PaperSize", "Letter"}});
  simulator.run_until(seconds(101));
  // The invalidation arrived but the body was not fetched yet: the cache
  // must still hold the complete version-1 description.
  ASSERT_TRUE(user->cached().has_value());
  EXPECT_EQ(user->cached()->version, 1u);
  EXPECT_EQ(user->cached()->attributes.size(), 4u);
}

TEST_F(AdaptiveFixture, BurstsCoalesceIntoOneFetch) {
  FrodoConfig config;
  config.propagation = UpdatePropagation::kInvalidation;
  config.invalidation_fetch_delay = seconds(120);
  build(config);
  simulator.run_until(seconds(100));
  // Five changes within the fetch window: one fetch, final version only.
  for (int i = 0; i < 5; ++i) {
    simulator.schedule_at(seconds(200 + 10 * i),
                          [&] { manager->change_service(1); });
  }
  simulator.run_until(seconds(1000));
  EXPECT_EQ(user->cached()->version, 6u);
  EXPECT_EQ(simulator.trace().count_event("frodo.invalidation.fetch"),
            1u);
}

TEST_F(AdaptiveFixture, AdaptiveUsesDataForSettledServices) {
  FrodoConfig config;
  config.propagation = UpdatePropagation::kAdaptive;
  config.adaptive_hot_threshold = seconds(600);
  build(config);
  simulator.run_until(seconds(100));
  // First change: no previous gap -> data push, immediate consistency.
  manager->change_service(1);
  simulator.run_until(seconds(101));
  EXPECT_EQ(user->cached()->version, 2u);
  // Second change 1800 s later (cold): data again.
  simulator.run_until(seconds(1900));
  manager->change_service(1);
  simulator.run_until(seconds(1901));
  EXPECT_EQ(user->cached()->version, 3u);
  EXPECT_EQ(simulator.trace().count_event("frodo.invalidation.fetch"),
            0u);
}

TEST_F(AdaptiveFixture, AdaptiveSwitchesToInvalidationWhenHot) {
  FrodoConfig config;
  config.propagation = UpdatePropagation::kAdaptive;
  config.adaptive_hot_threshold = seconds(600);
  config.invalidation_fetch_delay = seconds(120);
  build(config);
  simulator.run_until(seconds(100));
  manager->change_service(1);  // v2: cold -> data
  simulator.run_until(seconds(150));
  manager->change_service(1);  // v3: 50 s gap -> hot -> invalidation
  simulator.run_until(seconds(151));
  EXPECT_EQ(user->cached()->version, 2u);  // only the stub arrived so far
  simulator.run_until(seconds(1000));
  EXPECT_EQ(user->cached()->version, 3u);  // fetched after the delay
  EXPECT_EQ(simulator.trace().count_event("frodo.invalidation.fetch"),
            1u);
}

TEST_F(AdaptiveFixture, InvalidationSavesBytesOnHotServices) {
  // The efficiency claim: under a burst of changes, invalidation moves
  // fewer update-class bytes than pushing the full description each time.
  const auto bytes_for = [&](UpdatePropagation mode) {
    sim::Simulator s(77);
    net::Network n(s);
    discovery::ConsistencyObserver obs;
    FrodoConfig config;
    config.propagation = mode;
    config.invalidation_fetch_delay = seconds(120);
    FrodoRegistryNode reg(s, n, 1, 100, config);
    FrodoManager mgr(s, n, 10, DeviceClass::k300D, config, &obs);
    mgr.add_service(printer_sd());
    std::vector<std::unique_ptr<FrodoUser>> users;
    for (int i = 0; i < 5; ++i) {
      users.push_back(std::make_unique<FrodoUser>(
          s, n, static_cast<NodeId>(11 + i), DeviceClass::k300D,
          Matching{"Printer", "ColorPrinter"}, config, &obs));
    }
    reg.start();
    mgr.start();
    for (auto& u : users) u->start();
    s.run_until(seconds(100));
    const auto before = n.counters().bytes_of_class(net::MessageClass::kUpdate);
    for (int c = 0; c < 10; ++c) {
      s.schedule_at(seconds(200 + 20 * c), [&] { mgr.change_service(1); });
    }
    s.run_until(seconds(2000));
    for (auto& u : users) {
      EXPECT_EQ(u->cached()->version, 11u);
    }
    return n.counters().bytes_of_class(net::MessageClass::kUpdate) - before;
  };
  const auto data_bytes = bytes_for(UpdatePropagation::kData);
  const auto invalidation_bytes = bytes_for(UpdatePropagation::kInvalidation);
  EXPECT_LT(invalidation_bytes, data_bytes);
}

}  // namespace
}  // namespace sdcm::frodo

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "sdcm/discovery/observer.hpp"
#include "sdcm/frodo/manager.hpp"
#include "sdcm/frodo/registry_node.hpp"
#include "sdcm/frodo/user.hpp"
#include <array>
#include "sdcm/net/failure_model.hpp"

namespace sdcm::frodo {
namespace {

using discovery::ServiceDescription;
using sim::seconds;

ServiceDescription printer_sd() {
  ServiceDescription sd;
  sd.id = 1;
  sd.device_type = "Printer";
  sd.service_type = "ColorPrinter";
  return sd;
}

Matching printer_req() { return Matching{"Printer", "ColorPrinter"}; }

/// The paper's topology (b): 1 300D Registry, 1 300D Backup, 1 300D
/// Manager, 5 300D Users - 8 nodes, all 300D, single-Registry system.
struct TwoPartyFixture : ::testing::Test {
  sim::Simulator simulator{777};
  net::Network network{simulator};
  discovery::ConsistencyObserver observer;
  std::unique_ptr<FrodoRegistryNode> registry;  // node 1, capability 100
  std::unique_ptr<FrodoRegistryNode> backup;    // node 2, capability 90
  std::unique_ptr<FrodoManager> manager;        // node 10
  std::vector<std::unique_ptr<FrodoUser>> users;  // nodes 11..

  void build(std::size_t n_users, FrodoConfig config = {}) {
    registry = std::make_unique<FrodoRegistryNode>(simulator, network, 1, 100,
                                                   config);
    backup = std::make_unique<FrodoRegistryNode>(simulator, network, 2, 90,
                                                 config);
    manager = std::make_unique<FrodoManager>(simulator, network, 10,
                                             DeviceClass::k300D, config,
                                             &observer);
    manager->add_service(printer_sd());
    for (std::size_t i = 0; i < n_users; ++i) {
      users.push_back(std::make_unique<FrodoUser>(
          simulator, network, static_cast<NodeId>(11 + i), DeviceClass::k300D,
          printer_req(), config, &observer));
    }
    registry->start();
    backup->start();
    manager->start();
    for (auto& u : users) u->start();
  }
};

TEST_F(TwoPartyFixture, UsersSubscribeDirectlyToThe300DManager) {
  build(5);
  simulator.run_until(seconds(100));
  EXPECT_TRUE(registry->is_central());
  EXPECT_EQ(backup->role(), FrodoRegistryNode::Role::kBackup);
  for (const auto& u : users) {
    ASSERT_TRUE(u->cached().has_value());
    EXPECT_TRUE(u->is_subscribed());
    EXPECT_TRUE(u->two_party());
    EXPECT_EQ(u->manager(), 10u);
  }
  EXPECT_EQ(manager->subscriber_count(1), 5u);
  // 2-party: the Central holds the registration but no subscriptions.
  EXPECT_TRUE(registry->has_registration(1));
  EXPECT_EQ(registry->subscription_count(1), 0u);
}

TEST_F(TwoPartyFixture, UpdateGoesDirectlyToUsersAndToTheCentral) {
  build(5);
  simulator.run_until(seconds(100));
  manager->change_service(1);
  simulator.run_until(seconds(200));
  for (const auto& u : users) {
    EXPECT_EQ(u->cached()->version, 2u);
  }
}

TEST_F(TwoPartyFixture, UpdateTransactionIsNPlus2Messages) {
  // Table 2 / Figure 6: FRODO with 2-party subscription also has m' = 7 -
  // 5 direct ServiceUpdates + the Manager->Central update + its ack.
  build(5);
  simulator.run_until(seconds(100));
  EXPECT_EQ(network.counters().of_class(net::MessageClass::kUpdate), 0u);
  manager->change_service(1);
  simulator.run_until(seconds(200));
  EXPECT_EQ(network.counters().of_class(net::MessageClass::kUpdate), 7u);
  EXPECT_EQ(network.counters().of_class(net::MessageClass::kTransport), 0u);
}

TEST_F(TwoPartyFixture, DirectUpdateIsFasterThanAnyTcpHandshake) {
  build(5);
  simulator.run_until(seconds(100));
  manager->change_service(1);
  simulator.run_until(seconds(101));
  const auto change = observer.change_time(2);
  for (const auto& u : users) {
    const auto reached = observer.reach_time(u->id(), 2);
    ASSERT_TRUE(reached.has_value());
    // One UDP hop: well under a millisecond.
    EXPECT_LT(*reached - *change, sim::milliseconds(1));
  }
}

TEST_F(TwoPartyFixture, Srn2RetriesUpdateOnSubscriptionRenewal) {
  // The paper's flagship low-failure-rate technique (Figure 4(i)): the
  // user misses the update (receiver down through SRN1's retries); the
  // manager marks it inconsistent and resends when the renewal arrives.
  build(1);
  simulator.run_until(seconds(100));
  ASSERT_EQ(manager->subscriber_count(1), 1u);

  network.interface(11).set_rx(false);
  manager->change_service(1);
  simulator.run_until(seconds(150));
  EXPECT_TRUE(manager->marked_inconsistent(1, 11));
  EXPECT_EQ(users[0]->cached()->version, 1u);

  // Receiver recovers; nothing happens until the next renewal (the
  // dependency on the lease period the paper blames for SRN2's latency).
  network.interface(11).set_rx(true);
  simulator.run_until(seconds(5400));
  EXPECT_EQ(users[0]->cached()->version, 2u);
  EXPECT_FALSE(manager->marked_inconsistent(1, 11));
  const auto reached = observer.reach_time(11, 2);
  ASSERT_TRUE(reached.has_value());
  // Renewals run at 900 s cadence: recovery lands on one of them.
  EXPECT_GT(*reached, seconds(900));
  EXPECT_EQ(simulator.trace().count_event("frodo.srn2.retry"), 1u);
}

TEST_F(TwoPartyFixture, WithoutSrn2TheUserMissesTheUpdateUntilPurge) {
  FrodoConfig config;
  config.enable_srn2 = false;
  build(1, config);
  simulator.run_until(seconds(100));
  network.interface(11).set_rx(false);
  manager->change_service(1);
  simulator.run_until(seconds(150));
  network.interface(11).set_rx(true);
  simulator.run_until(seconds(2500));
  // No SRN2: renewals succeed, the subscription stays, but v2 never
  // arrives (until some purge-rediscovery path would kick in).
  EXPECT_EQ(users[0]->cached()->version, 1u);
  EXPECT_TRUE(users[0]->is_subscribed());
}

TEST_F(TwoPartyFixture, PR4ResubscriptionCarriesTheUpdate) {
  // The manager purges the user (its subscription lapses while the user's
  // transmitter is down); when the user's renewal finally arrives, the
  // manager requests resubscription and the subscribe ack carries v2 -
  // unlike UPnP, where resubscription restores nothing.
  build(1);
  simulator.run_until(seconds(100));
  network.interface(11).set_tx(false);
  simulator.schedule_at(seconds(200), [&] { manager->change_service(1); });
  simulator.run_until(seconds(3000));
  EXPECT_EQ(manager->subscriber_count(1), 0u);  // lease lapsed
  network.interface(11).set_tx(true);
  simulator.run_until(seconds(5400));
  EXPECT_EQ(users[0]->cached()->version, 2u);
  EXPECT_TRUE(users[0]->is_subscribed());
  EXPECT_EQ(manager->subscriber_count(1), 1u);
  EXPECT_GE(simulator.trace().count_event("frodo.resubscribe.request"), 1u);
}

TEST_F(TwoPartyFixture, PR5PurgeAndRediscoverViaRegistryQuery) {
  // The manager dies mid-run; renewals fail repeatedly, the user purges
  // it (PR5) and queries the Central, which still holds the registration
  // until its lease expires... after the manager recovers and
  // re-registers, the user's periodic search finds the current version.
  build(1);
  simulator.run_until(seconds(100));
  net::FailureEpisode ep;
  ep.node = 10;
  ep.mode = net::FailureMode::kBoth;
  ep.start = seconds(200);
  ep.duration = seconds(2500);
  net::apply_failures(simulator, network, std::array{ep});
  simulator.schedule_at(seconds(2701), [&] { manager->change_service(1); });

  simulator.run_until(seconds(5400));
  ASSERT_TRUE(users[0]->cached().has_value());
  EXPECT_EQ(users[0]->cached()->version, 2u);
  EXPECT_GE(simulator.trace().count_event("frodo.manager.purged"), 1u);
}

TEST_F(TwoPartyFixture, BackupTakeoverKeepsTheSystemServing) {
  build(1);
  simulator.run_until(seconds(100));
  // Registry node dies for the rest of the run; the Backup takes over
  // and the (re-registering) manager + user continue via the new Central.
  net::FailureEpisode ep;
  ep.node = 1;
  ep.mode = net::FailureMode::kBoth;
  ep.start = seconds(150);
  ep.duration = seconds(5250);
  net::apply_failures(simulator, network, std::array{ep});

  simulator.run_until(seconds(5400));
  EXPECT_TRUE(backup->is_central());
  EXPECT_TRUE(backup->has_registration(1));
  // 2-party consistency is unaffected by the Central change.
  manager->change_service(1);
  simulator.run_until(seconds(5400) + seconds(10));
  EXPECT_EQ(users[0]->cached()->version, 2u);
}

}  // namespace
}  // namespace sdcm::frodo

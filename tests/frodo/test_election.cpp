#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "sdcm/frodo/registry_node.hpp"
#include "sdcm/net/failure_model.hpp"

namespace sdcm::frodo {
namespace {

using sim::seconds;

struct ElectionFixture : ::testing::Test {
  sim::Simulator simulator{99};
  net::Network network{simulator};
  std::vector<std::unique_ptr<FrodoRegistryNode>> nodes;

  FrodoRegistryNode& add(NodeId id, Capability capability,
                         FrodoConfig config = {}) {
    nodes.push_back(std::make_unique<FrodoRegistryNode>(simulator, network,
                                                        id, capability,
                                                        config));
    return *nodes.back();
  }

  void start_all() {
    for (auto& n : nodes) n->start();
  }
};

TEST_F(ElectionFixture, SingleNodeElectsItself) {
  auto& solo = add(1, 100);
  start_all();
  simulator.run_until(seconds(10));
  EXPECT_TRUE(solo.is_central());
  EXPECT_EQ(solo.epoch(), 1u);
  EXPECT_EQ(solo.backup(), sim::kNoNode);  // nobody to appoint
}

TEST_F(ElectionFixture, MostPowerfulNodeWins) {
  auto& weak = add(1, 50);
  auto& strong = add(2, 100);
  auto& mid = add(3, 75);
  start_all();
  simulator.run_until(seconds(10));
  EXPECT_FALSE(weak.is_central());
  EXPECT_TRUE(strong.is_central());
  EXPECT_FALSE(mid.is_central());
}

TEST_F(ElectionFixture, CentralAppointsBackupWithSecondBestCapability) {
  add(1, 50);
  auto& strong = add(2, 100);
  auto& mid = add(3, 75);
  start_all();
  simulator.run_until(seconds(10));
  EXPECT_EQ(strong.backup(), 3u);
  EXPECT_EQ(mid.role(), FrodoRegistryNode::Role::kBackup);
  EXPECT_EQ(nodes[0]->role(), FrodoRegistryNode::Role::kStandby);
}

TEST_F(ElectionFixture, CapabilityTieBrokenById) {
  auto& a = add(1, 100);
  auto& b = add(2, 100);
  start_all();
  simulator.run_until(seconds(10));
  EXPECT_FALSE(a.is_central());
  EXPECT_TRUE(b.is_central());
}

TEST_F(ElectionFixture, BackupTakesOverWhenCentralGoesSilent) {
  auto& central = add(1, 100);
  auto& backup = add(2, 90);
  start_all();
  simulator.run_until(seconds(10));
  ASSERT_TRUE(central.is_central());
  ASSERT_EQ(backup.role(), FrodoRegistryNode::Role::kBackup);

  // The Central fails hard (both interfaces) for a long stretch; the
  // Backup misses 2 announcement periods (2 x 1200 s) and promotes.
  net::FailureEpisode ep;
  ep.node = 1;
  ep.mode = net::FailureMode::kBoth;
  ep.start = seconds(100);
  ep.duration = seconds(4000);
  net::apply_failures(simulator, network, std::array{ep});

  simulator.run_until(seconds(3700));
  EXPECT_TRUE(backup.is_central());
  EXPECT_GT(backup.epoch(), central.epoch());
}

TEST_F(ElectionFixture, RecoveredCentralYieldsToHigherEpoch) {
  auto& old_central = add(1, 100);
  auto& backup = add(2, 90);
  start_all();
  simulator.run_until(seconds(10));
  net::FailureEpisode ep;
  ep.node = 1;
  ep.mode = net::FailureMode::kBoth;
  ep.start = seconds(100);
  ep.duration = seconds(4000);
  net::apply_failures(simulator, network, std::array{ep});

  simulator.run_until(seconds(5400));
  // After recovery at 4100 s, the old Central hears the Backup's
  // higher-epoch announcements (at latest the 4800 s one) and demotes,
  // despite its higher capability.
  EXPECT_TRUE(backup.is_central());
  EXPECT_FALSE(old_central.is_central());
}

TEST_F(ElectionFixture, StandbyReElectsWhenBothCentralAndBackupDie) {
  auto& central = add(1, 100);
  auto& backup = add(2, 90);
  auto& standby = add(3, 80);
  start_all();
  simulator.run_until(seconds(10));
  ASSERT_EQ(standby.role(), FrodoRegistryNode::Role::kStandby);

  for (const NodeId node : {NodeId{1}, NodeId{2}}) {
    net::FailureEpisode ep;
    ep.node = node;
    ep.mode = net::FailureMode::kBoth;
    ep.start = seconds(100);
    ep.duration = seconds(5300);
    net::apply_failures(simulator, network, std::array{ep});
  }
  // While the others are cut off, the standby must step up and serve.
  // (The isolated nodes cannot know they lost the role; the backup even
  // promotes itself - convergence happens after recovery.)
  simulator.run_until(seconds(5300));
  EXPECT_TRUE(standby.is_central());

  // After the outage ends at 5400 s, conflicting Centrals resolve via
  // (epoch, capability, id) within a couple of announcement periods.
  simulator.run_until(seconds(8500));
  const int centrals = (central.is_central() ? 1 : 0) +
                       (backup.is_central() ? 1 : 0) +
                       (standby.is_central() ? 1 : 0);
  EXPECT_EQ(centrals, 1);
}

TEST_F(ElectionFixture, AnnouncementCadenceMatchesPaper) {
  // Section 5 Step 4: "in FRODO, the Registry sends 2 multicast
  // announcements every 1200 s".
  add(1, 100);
  start_all();
  simulator.run_until(seconds(2500));
  // Announcements at election (~5 s), 1205 s, 2405 s -> 3 x 2 copies.
  EXPECT_EQ(network.counters().of_type(msg::kCentralAnnounce), 6u);
}

TEST_F(ElectionFixture, RoleNames) {
  EXPECT_EQ(to_string(FrodoRegistryNode::Role::kCentral), "central");
  EXPECT_EQ(to_string(FrodoRegistryNode::Role::kBackup), "backup");
  EXPECT_EQ(to_string(FrodoRegistryNode::Role::kStandby), "standby");
  EXPECT_EQ(to_string(FrodoRegistryNode::Role::kElecting), "electing");
}

}  // namespace
}  // namespace sdcm::frodo

#include <gtest/gtest.h>

#include <array>
#include <memory>
#include <vector>

#include "sdcm/discovery/observer.hpp"
#include "sdcm/frodo/manager.hpp"
#include "sdcm/frodo/registry_node.hpp"
#include "sdcm/frodo/user.hpp"
#include "sdcm/net/failure_model.hpp"

namespace sdcm::frodo {
namespace {

using discovery::ServiceDescription;
using sim::seconds;

/// 3-party recovery scenarios (topology (a)).
struct FrodoRecoveryFixture : ::testing::Test {
  sim::Simulator simulator{31337};
  net::Network network{simulator};
  discovery::ConsistencyObserver observer;
  std::unique_ptr<FrodoRegistryNode> registry;  // node 1
  std::unique_ptr<FrodoManager> manager;        // node 10
  std::unique_ptr<FrodoUser> user;              // node 11

  void build(FrodoConfig config = {}) {
    ServiceDescription sd;
    sd.id = 1;
    sd.device_type = "Printer";
    sd.service_type = "ColorPrinter";
    registry = std::make_unique<FrodoRegistryNode>(simulator, network, 1, 100,
                                                   config);
    manager = std::make_unique<FrodoManager>(simulator, network, 10,
                                             DeviceClass::k3D, config,
                                             &observer);
    manager->add_service(sd);
    user = std::make_unique<FrodoUser>(simulator, network, 11,
                                       DeviceClass::k3D,
                                       Matching{"Printer", "ColorPrinter"},
                                       config, &observer);
    registry->start();
    manager->start();
    user->start();
  }

  void fail(net::NodeId node, net::FailureMode mode, sim::SimTime start,
            sim::SimDuration duration) {
    net::FailureEpisode ep;
    ep.node = node;
    ep.mode = mode;
    ep.start = start;
    ep.duration = duration;
    net::apply_failures(simulator, network, std::array{ep});
  }
};

TEST_F(FrodoRecoveryFixture, PR1ManagerReRegistersChangedService) {
  // The Central is unreachable when the service changes; the Manager's
  // update exhausts SRN1 and the Central is eventually purged for
  // silence. When the Central recovers and announces, the Manager
  // re-registers the changed description and the Central notifies the
  // interested User (PR1, Figure 4(ii)).
  build();
  fail(1, net::FailureMode::kBoth, seconds(150), seconds(2500));
  simulator.schedule_at(seconds(300), [&] { manager->change_service(1); });

  simulator.run_until(seconds(2600));
  EXPECT_EQ(user->cached()->version, 1u);
  simulator.run_until(seconds(5400));
  EXPECT_EQ(user->cached()->version, 2u);
  EXPECT_GE(simulator.trace().count_event("frodo.notify.tx"), 1u);
}

TEST(FrodoPr1Ablation, WithoutPR1RecoveryIsStrictlySlower) {
  // The Figure 7 ablation: without PR1 the same manager-outage scenario
  // still recovers eventually (the User's periodic PR5 search is a
  // backstop), but strictly later than the PR1 notification delivers it.
  const auto run = [](bool enable_pr1) {
    sim::Simulator simulator(31337);
    net::Network network(simulator);
    discovery::ConsistencyObserver observer;
    FrodoConfig config;
    config.enable_pr1 = enable_pr1;

    ServiceDescription sd;
    sd.id = 1;
    sd.device_type = "Printer";
    sd.service_type = "ColorPrinter";
    FrodoRegistryNode registry(simulator, network, 1, 100, config);
    FrodoManager manager(simulator, network, 10, DeviceClass::k3D, config,
                         &observer);
    manager.add_service(sd);
    FrodoUser user(simulator, network, 11, DeviceClass::k3D,
                   Matching{"Printer", "ColorPrinter"}, config, &observer);
    registry.start();
    manager.start();
    user.start();

    net::FailureEpisode ep;
    ep.node = 10;
    ep.mode = net::FailureMode::kTransmitter;
    ep.start = seconds(150);
    ep.duration = seconds(2500);
    net::apply_failures(simulator, network, std::array{ep});
    simulator.schedule_at(seconds(300), [&] { manager.change_service(1); });
    simulator.run_until(seconds(5400));
    return observer.reach_time(11, 2);
  };

  const auto with_pr1 = run(true);
  const auto without_pr1 = run(false);
  ASSERT_TRUE(with_pr1.has_value());
  ASSERT_TRUE(without_pr1.has_value());
  EXPECT_LT(*with_pr1, *without_pr1);
}

TEST_F(FrodoRecoveryFixture, PR3ResubscriptionResponseCarriesUpdate) {
  // Pure PR3: the User's transmitter is down long enough for its
  // subscription to lapse at the Central while its receiver stays up
  // (it keeps hearing announcements, so the Central is never purged and
  // no rediscovery path interferes). A brief receiver outage makes it
  // miss the v2 propagation (SRN1 exhausted; no SRN2 at the Central).
  // When the transmitter recovers, the next blind renewal reaches the
  // Central, which does not know the subscription any more and answers
  // with a ResubscribeRequest; the resubscription ack carries v2.
  build();
  fail(11, net::FailureMode::kTransmitter, seconds(950), seconds(2600));
  fail(11, net::FailureMode::kReceiver, seconds(1490), seconds(30));
  simulator.schedule_at(seconds(1500), [&] { manager->change_service(1); });
  simulator.run_until(seconds(5400));
  EXPECT_EQ(user->cached()->version, 2u);
  EXPECT_GE(simulator.trace().count_event("frodo.resubscribe.request"), 1u);
  EXPECT_TRUE(user->is_subscribed());
  const auto reached = observer.reach_time(11, 2);
  ASSERT_TRUE(reached.has_value());
  EXPECT_GT(*reached, seconds(3550));  // only after the tx recovered
}

TEST_F(FrodoRecoveryFixture, ServicePurgedTriggersPR5Rediscovery) {
  // The Manager dies; its registration lapses at the Central, which tells
  // the subscribed User (ServicePurged). The User purges and keeps
  // searching; when the Manager recovers it re-registers (with the change
  // it made while isolated) and the User's search finds version 2.
  build();
  fail(10, net::FailureMode::kBoth, seconds(200), seconds(3000));
  simulator.schedule_at(seconds(1000), [&] { manager->change_service(1); });
  simulator.run_until(seconds(5400));
  ASSERT_TRUE(user->cached().has_value());
  EXPECT_EQ(user->cached()->version, 2u);
  EXPECT_GE(simulator.trace().count_event("frodo.manager.purged"), 1u);
}

TEST_F(FrodoRecoveryFixture, ShortOutageBridgedBySrn1Retransmissions) {
  // An outage shorter than SRN1's retry window (3 retries x 2 s): the
  // update is delivered by a protocol-level retransmission, with no TCP
  // anywhere (Table 3).
  build();
  fail(11, net::FailureMode::kReceiver, seconds(199), seconds(4));
  simulator.schedule_at(seconds(200), [&] { manager->change_service(1); });
  simulator.run_until(seconds(300));
  EXPECT_EQ(user->cached()->version, 2u);
  const auto reached = observer.reach_time(11, 2);
  ASSERT_TRUE(reached.has_value());
  EXPECT_LT(*reached, seconds(207));
  EXPECT_EQ(network.counters().of_class(net::MessageClass::kTransport), 0u);
}

TEST_F(FrodoRecoveryFixture, UserOfflineThroughChangeRecovers) {
  // Full user blackout across the change; multiple recovery paths can
  // serve it afterwards (PR3 resubscription, PR1 notification); verify
  // eventual consistency - the Configuration Update Principles.
  build();
  fail(11, net::FailureMode::kBoth, seconds(500), seconds(2500));
  simulator.schedule_at(seconds(1000), [&] { manager->change_service(1); });
  simulator.run_until(seconds(5400));
  EXPECT_EQ(user->cached()->version, 2u);
}

TEST_F(FrodoRecoveryFixture, CentralOutageDelaysButDoesNotLoseUpdate) {
  build();
  fail(1, net::FailureMode::kBoth, seconds(500), seconds(2000));
  simulator.schedule_at(seconds(600), [&] { manager->change_service(1); });
  simulator.run_until(seconds(5400));
  EXPECT_EQ(user->cached()->version, 2u);
  ASSERT_TRUE(observer.reach_time(11, 2).has_value());
  EXPECT_GT(*observer.reach_time(11, 2), seconds(2500));
}

TEST_F(FrodoRecoveryFixture, ManagerTxOutagePaperExampleTiming) {
  // The Section 6.2 example's Manager failure window (tx down 381-1191 at
  // lambda = 0.15) must be harmless in FRODO when the change happens
  // after recovery - and the registration must survive via renewals.
  build();
  fail(10, net::FailureMode::kTransmitter, seconds(381), seconds(810));
  simulator.schedule_at(seconds(2507), [&] { manager->change_service(1); });
  simulator.run_until(seconds(5400));
  EXPECT_EQ(user->cached()->version, 2u);
  const auto reached = observer.reach_time(11, 2);
  ASSERT_TRUE(reached.has_value());
  EXPECT_LT(*reached - seconds(2507), seconds(1));
}

}  // namespace
}  // namespace sdcm::frodo

#include <gtest/gtest.h>

#include <array>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "sdcm/sim/event_queue.hpp"

namespace sdcm::sim {
namespace {

TEST(InlineCallback, DefaultIsEmpty) {
  InlineCallback cb;
  EXPECT_FALSE(static_cast<bool>(cb));
  EXPECT_FALSE(cb.heap_allocated());
}

TEST(InlineCallback, SmallCaptureStaysInline) {
  int fired = 0;
  InlineCallback cb = [&fired] { ++fired; };
  EXPECT_TRUE(static_cast<bool>(cb));
  EXPECT_FALSE(cb.heap_allocated());
  cb();
  cb();
  EXPECT_EQ(fired, 2);
}

TEST(InlineCallback, TimerSizedCaptureStaysInline) {
  // The shape of a real lease-renewal callback: an object pointer, a
  // node id, a service id, and a retry counter. Must never allocate.
  struct Fake {
    int renews = 0;
  } fake;
  std::uint32_t registry = 7;
  std::uint64_t service = 42;
  int retries = 3;
  InlineCallback cb = [&fake, registry, service, retries] {
    fake.renews += static_cast<int>(registry + service) + retries;
  };
  EXPECT_FALSE(cb.heap_allocated());
  cb();
  EXPECT_EQ(fake.renews, 52);
}

TEST(InlineCallback, OversizedCaptureFallsBackToHeap) {
  std::array<std::uint64_t, 16> big{};  // 128 bytes > kInlineSize
  big[0] = 5;
  int out = 0;
  InlineCallback cb = [big, &out] { out = static_cast<int>(big[0]); };
  EXPECT_TRUE(cb.heap_allocated());
  cb();
  EXPECT_EQ(out, 5);
}

TEST(InlineCallback, MoveTransfersAndEmptiesSource) {
  int fired = 0;
  InlineCallback a = [&fired] { ++fired; };
  InlineCallback b = std::move(a);
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
  EXPECT_TRUE(static_cast<bool>(b));
  b();
  EXPECT_EQ(fired, 1);

  InlineCallback c;
  c = std::move(b);
  c();
  EXPECT_EQ(fired, 2);
}

TEST(InlineCallback, DestroysCapturedStateExactlyOnce) {
  auto token = std::make_shared<int>(1);
  EXPECT_EQ(token.use_count(), 1);
  {
    InlineCallback cb = [token] { ++*token; };
    EXPECT_EQ(token.use_count(), 2);
    InlineCallback moved = std::move(cb);
    EXPECT_EQ(token.use_count(), 2);  // relocated, not duplicated
    moved();
  }
  EXPECT_EQ(token.use_count(), 1);
  EXPECT_EQ(*token, 2);
}

TEST(InlineCallback, ResetReleasesCapturedState) {
  auto token = std::make_shared<int>(0);
  InlineCallback cb = [token] {};
  EXPECT_EQ(token.use_count(), 2);
  cb.reset();
  EXPECT_EQ(token.use_count(), 1);
  EXPECT_FALSE(static_cast<bool>(cb));
}

TEST(InlineCallback, HeapCaseDestroysCapturedState) {
  auto token = std::make_shared<int>(0);
  std::array<std::uint64_t, 16> pad{};
  {
    InlineCallback cb = [token, pad] { static_cast<void>(pad); };
    EXPECT_TRUE(cb.heap_allocated());
    EXPECT_EQ(token.use_count(), 2);
    InlineCallback moved = std::move(cb);
    EXPECT_EQ(token.use_count(), 2);  // box pointer stolen, no copy
  }
  EXPECT_EQ(token.use_count(), 1);
}

TEST(InlineCallback, SurvivesContainerRelocation) {
  // Slab growth relocates slots; the callback must keep working after
  // its storage moves.
  int total = 0;
  std::vector<InlineCallback> callbacks;
  for (int i = 0; i < 100; ++i) {
    callbacks.emplace_back([&total, i] { total += i; });
  }
  for (auto& cb : callbacks) cb();
  EXPECT_EQ(total, 99 * 100 / 2);
}

TEST(InlineCallback, WrapsStdFunction) {
  int fired = 0;
  std::function<void()> fn = [&fired] { ++fired; };
  InlineCallback cb = fn;  // copies the function object
  EXPECT_FALSE(cb.heap_allocated());
  cb();
  fn();
  EXPECT_EQ(fired, 2);
}

TEST(InlineCallback, MutableLambdaKeepsItsState) {
  int out = 0;
  InlineCallback cb = [counter = 0, &out]() mutable { out = ++counter; };
  cb();
  cb();
  cb();
  EXPECT_EQ(out, 3);
}

}  // namespace
}  // namespace sdcm::sim

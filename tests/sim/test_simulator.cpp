#include "sdcm/sim/simulator.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace sdcm::sim {
namespace {

TEST(Simulator, ClockStartsAtZero) {
  Simulator s(1);
  EXPECT_EQ(s.now(), 0);
}

TEST(Simulator, RunUntilAdvancesClockToHorizonEvenWhenQueueDrains) {
  Simulator s(1);
  s.schedule_in(seconds(1), [] {});
  s.run_until(seconds(10));
  EXPECT_EQ(s.now(), seconds(10));
  EXPECT_EQ(s.executed_events(), 1u);
}

TEST(Simulator, EventsAfterHorizonStayPending) {
  Simulator s(1);
  bool late = false;
  s.schedule_in(seconds(20), [&] { late = true; });
  s.run_until(seconds(10));
  EXPECT_FALSE(late);
  EXPECT_EQ(s.pending_events(), 1u);
  s.run_until(seconds(30));
  EXPECT_TRUE(late);
}

TEST(Simulator, EventAtExactHorizonRuns) {
  Simulator s(1);
  bool fired = false;
  s.schedule_at(seconds(10), [&] { fired = true; });
  s.run_until(seconds(10));
  EXPECT_TRUE(fired);
}

TEST(Simulator, CallbacksSeeTheirScheduledTime) {
  Simulator s(1);
  SimTime seen = -1;
  s.schedule_in(seconds(3), [&] { seen = s.now(); });
  s.run_until(seconds(5));
  EXPECT_EQ(seen, seconds(3));
}

TEST(Simulator, NestedSchedulingWorks) {
  Simulator s(1);
  std::vector<SimTime> times;
  s.schedule_in(seconds(1), [&] {
    times.push_back(s.now());
    s.schedule_in(seconds(1), [&] { times.push_back(s.now()); });
  });
  s.run_until(seconds(5));
  EXPECT_EQ(times, (std::vector<SimTime>{seconds(1), seconds(2)}));
}

TEST(Simulator, StopHaltsTheLoop) {
  Simulator s(1);
  int count = 0;
  s.schedule_in(1, [&] {
    ++count;
    s.stop();
  });
  s.schedule_in(2, [&] { ++count; });
  s.run_until(seconds(1));
  EXPECT_EQ(count, 1);
}

TEST(Simulator, CancelScheduledEvent) {
  Simulator s(1);
  bool fired = false;
  const auto id = s.schedule_in(seconds(1), [&] { fired = true; });
  s.cancel(id);
  s.run_until(seconds(2));
  EXPECT_FALSE(fired);
}

TEST(Simulator, RunAllDrainsEverything) {
  Simulator s(1);
  int count = 0;
  for (int i = 1; i <= 5; ++i) {
    s.schedule_in(seconds(i), [&] { ++count; });
  }
  s.run_all();
  EXPECT_EQ(count, 5);
  EXPECT_EQ(s.pending_events(), 0u);
}

TEST(PeriodicTimer, FixedPeriodTicks) {
  Simulator s(1);
  PeriodicTimer timer;
  std::vector<SimTime> ticks;
  timer.start(s, seconds(1), seconds(2), [&] { ticks.push_back(s.now()); });
  s.run_until(seconds(8));
  EXPECT_EQ(ticks,
            (std::vector<SimTime>{seconds(1), seconds(3), seconds(5),
                                  seconds(7)}));
}

TEST(PeriodicTimer, StopInsideTick) {
  Simulator s(1);
  PeriodicTimer timer;
  int count = 0;
  timer.start(s, seconds(1), seconds(1), [&] {
    if (++count == 3) timer.stop();
  });
  s.run_until(seconds(10));
  EXPECT_EQ(count, 3);
  EXPECT_FALSE(timer.running());
}

TEST(PeriodicTimer, StopOutsideTick) {
  Simulator s(1);
  PeriodicTimer timer;
  int count = 0;
  timer.start(s, seconds(1), seconds(1), [&] { ++count; });
  s.run_until(seconds(2));
  timer.stop();
  s.run_until(seconds(10));
  EXPECT_EQ(count, 2);
}

TEST(PeriodicTimer, VariablePeriodViaCallback) {
  Simulator s(1);
  PeriodicTimer timer;
  std::vector<SimTime> ticks;
  SimDuration period = seconds(1);
  timer.start(
      s, seconds(1), [&] { ticks.push_back(s.now()); },
      [&period]() {
        period *= 2;
        return period;
      });
  s.run_until(seconds(16));
  // Ticks at 1, then +2 -> 3, +4 -> 7, +8 -> 15.
  EXPECT_EQ(ticks, (std::vector<SimTime>{seconds(1), seconds(3), seconds(7),
                                         seconds(15)}));
}

TEST(PeriodicTimer, NegativePeriodStops) {
  Simulator s(1);
  PeriodicTimer timer;
  int count = 0;
  timer.start(
      s, seconds(1), [&] { ++count; }, []() { return SimDuration{-1}; });
  s.run_until(seconds(10));
  EXPECT_EQ(count, 1);
}

TEST(PeriodicTimer, RestartReplacesSchedule) {
  Simulator s(1);
  PeriodicTimer timer;
  std::vector<int> which;
  timer.start(s, seconds(1), seconds(1), [&] { which.push_back(1); });
  s.run_until(seconds(1));
  timer.start(s, seconds(5), seconds(5), [&] { which.push_back(2); });
  s.run_until(seconds(12));
  EXPECT_EQ(which, (std::vector<int>{1, 2, 2}));
}

TEST(PeriodicTimer, DestructorCancels) {
  Simulator s(1);
  int count = 0;
  {
    PeriodicTimer timer;
    timer.start(s, seconds(1), seconds(1), [&] { ++count; });
  }
  s.run_until(seconds(10));
  EXPECT_EQ(count, 0);
}

}  // namespace
}  // namespace sdcm::sim

#include "sdcm/sim/trace.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace sdcm::sim {
namespace {

TEST(Trace, RecordsInOrder) {
  TraceLog log;
  log.record(seconds(1), 1, TraceCategory::kUpdate, "ServiceUpdate.tx");
  log.record(seconds(2), 2, TraceCategory::kUpdate, "ServiceUpdate.rx");
  ASSERT_EQ(log.records().size(), 2u);
  EXPECT_EQ(log.records()[0].event, "ServiceUpdate.tx");
  EXPECT_EQ(log.records()[1].node, 2u);
}

TEST(Trace, RecordingCanBeDisabled) {
  TraceLog log;
  log.set_recording(false);
  log.record(0, 1, TraceCategory::kInfo, "ignored");
  EXPECT_TRUE(log.records().empty());
  log.set_recording(true);
  log.record(0, 1, TraceCategory::kInfo, "kept");
  EXPECT_EQ(log.records().size(), 1u);
}

TEST(Trace, WithEventFilters) {
  TraceLog log;
  log.record(1, 1, TraceCategory::kUpdate, "a");
  log.record(2, 1, TraceCategory::kUpdate, "b");
  log.record(3, 2, TraceCategory::kUpdate, "a");
  const auto found = log.with_event("a");
  ASSERT_EQ(found.size(), 2u);
  EXPECT_EQ(found[0].at, 1);
  EXPECT_EQ(found[1].node, 2u);
}

TEST(Trace, CountIf) {
  TraceLog log;
  for (int i = 0; i < 5; ++i) {
    log.record(i, 1,
               i % 2 == 0 ? TraceCategory::kFailure : TraceCategory::kInfo,
               "x");
  }
  EXPECT_EQ(log.count_if([](const TraceRecord& r) {
              return r.category == TraceCategory::kFailure;
            }),
            3u);
}

TEST(Trace, PrintProducesOneLinePerRecord) {
  TraceLog log;
  log.record(seconds(1), 1, TraceCategory::kDiscovery, "Announce", "n=6");
  log.record(seconds(2), 2, TraceCategory::kUpdate, "Notify");
  std::ostringstream oss;
  log.print(oss);
  const std::string out = oss.str();
  EXPECT_NE(out.find("Announce"), std::string::npos);
  EXPECT_NE(out.find("[n=6]"), std::string::npos);
  EXPECT_NE(out.find("discovery"), std::string::npos);
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 2);
}

TEST(Trace, CategoryNames) {
  EXPECT_EQ(to_string(TraceCategory::kFailure), "failure");
  EXPECT_EQ(to_string(TraceCategory::kElection), "election");
  EXPECT_EQ(to_string(TraceCategory::kSubscription), "subscription");
}

TEST(Trace, ClearEmptiesTheLog) {
  TraceLog log;
  log.record(0, 1, TraceCategory::kInfo, "x");
  log.clear();
  EXPECT_TRUE(log.records().empty());
}

}  // namespace
}  // namespace sdcm::sim

#include "sdcm/sim/trace.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace sdcm::sim {
namespace {

TEST(Trace, RecordsInOrder) {
  TraceLog log;
  log.record(seconds(1), 1, TraceCategory::kUpdate, "ServiceUpdate.tx");
  log.record(seconds(2), 2, TraceCategory::kUpdate, "ServiceUpdate.rx");
  ASSERT_EQ(log.records().size(), 2u);
  EXPECT_EQ(log.records()[0].event, "ServiceUpdate.tx");
  EXPECT_EQ(log.records()[1].node, 2u);
}

TEST(Trace, RecordingCanBeDisabled) {
  TraceLog log;
  log.set_recording(false);
  log.record(0, 1, TraceCategory::kInfo, "ignored");
  EXPECT_TRUE(log.records().empty());
  log.set_recording(true);
  log.record(0, 1, TraceCategory::kInfo, "kept");
  EXPECT_EQ(log.records().size(), 1u);
}

TEST(Trace, WithEventFilters) {
  TraceLog log;
  log.record(1, 1, TraceCategory::kUpdate, "a");
  log.record(2, 1, TraceCategory::kUpdate, "b");
  log.record(3, 2, TraceCategory::kUpdate, "a");
  const auto found = log.with_event("a");
  ASSERT_EQ(found.size(), 2u);
  EXPECT_EQ(found[0].at, 1);
  EXPECT_EQ(found[1].node, 2u);
}

TEST(Trace, CountIf) {
  TraceLog log;
  for (int i = 0; i < 5; ++i) {
    log.record(i, 1,
               i % 2 == 0 ? TraceCategory::kFailure : TraceCategory::kInfo,
               "x");
  }
  EXPECT_EQ(log.count_if([](const TraceRecord& r) {
              return r.category == TraceCategory::kFailure;
            }),
            3u);
}

TEST(Trace, PrintProducesOneLinePerRecord) {
  TraceLog log;
  log.record(seconds(1), 1, TraceCategory::kDiscovery, "Announce", "n=6");
  log.record(seconds(2), 2, TraceCategory::kUpdate, "Notify");
  std::ostringstream oss;
  log.print(oss);
  const std::string out = oss.str();
  EXPECT_NE(out.find("Announce"), std::string::npos);
  EXPECT_NE(out.find("[n=6]"), std::string::npos);
  EXPECT_NE(out.find("discovery"), std::string::npos);
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 2);
}

TEST(Trace, CategoryNames) {
  EXPECT_EQ(to_string(TraceCategory::kFailure), "failure");
  EXPECT_EQ(to_string(TraceCategory::kElection), "election");
  EXPECT_EQ(to_string(TraceCategory::kSubscription), "subscription");
}

TEST(Trace, ClearEmptiesTheLog) {
  TraceLog log;
  log.record(0, 1, TraceCategory::kInfo, "x");
  log.clear();
  EXPECT_TRUE(log.records().empty());
}

TEST(TraceSpans, RecordAssignsMonotonicSpans) {
  TraceLog log;
  const SpanId a = log.record(1, 1, TraceCategory::kInfo, "a");
  const SpanId b = log.record(2, 1, TraceCategory::kInfo, "b");
  EXPECT_EQ(a, 1u);
  EXPECT_EQ(b, 2u);
  EXPECT_EQ(log.records()[0].span, a);
  EXPECT_EQ(log.records()[0].parent, kNoSpan);
  EXPECT_EQ(log.records()[1].parent, kNoSpan);
}

TEST(TraceSpans, SpanScopeParentsAmbientRecords) {
  TraceLog log;
  const SpanId root = log.record(1, 1, TraceCategory::kUpdate, "root");
  {
    SpanScope scope(log, root);
    const SpanId child = log.record(2, 2, TraceCategory::kUpdate, "child");
    EXPECT_EQ(log.records()[1].parent, root);
    {
      SpanScope inner(log, child);
      log.record(3, 3, TraceCategory::kUpdate, "grandchild");
      EXPECT_EQ(log.records()[2].parent, child);
    }
    // Inner scope restored the outer ambient span.
    log.record(4, 2, TraceCategory::kUpdate, "sibling");
    EXPECT_EQ(log.records()[3].parent, root);
  }
  log.record(5, 1, TraceCategory::kUpdate, "after");
  EXPECT_EQ(log.records()[4].parent, kNoSpan);
}

TEST(TraceSpans, RecordChildTakesExplicitParent) {
  TraceLog log;
  const SpanId root = log.record(1, 1, TraceCategory::kInfo, "root");
  SpanScope scope(log, root);
  const SpanId other = log.record_child(kNoSpan, 2, 2,
                                        TraceCategory::kInfo, "detached");
  EXPECT_EQ(log.records()[1].parent, kNoSpan);
  log.record_child(other, 3, 3, TraceCategory::kInfo, "adopted");
  EXPECT_EQ(log.records()[2].parent, other);
}

TEST(TraceSpans, DisabledRecordingReturnsNoSpan) {
  TraceLog log;
  log.set_recording(false);
  EXPECT_EQ(log.record(0, 1, TraceCategory::kInfo, "x"), kNoSpan);
}

TEST(Trace, ForEachEventMatchesExactly) {
  TraceLog log;
  log.record(1, 1, TraceCategory::kInfo, "tcp.rex");
  log.record(2, 1, TraceCategory::kInfo, "tcp.rex.giveup");
  log.record(3, 2, TraceCategory::kInfo, "tcp.rex");
  std::vector<SimTime> times;
  log.for_each_event("tcp.rex",
                     [&](const TraceRecord& r) { times.push_back(r.at); });
  ASSERT_EQ(times.size(), 2u);
  EXPECT_EQ(times[0], 1);
  EXPECT_EQ(times[1], 3);
  EXPECT_EQ(log.count_event("tcp.rex"), 2u);
  EXPECT_EQ(log.count_event("tcp.rex.giveup"), 1u);
  EXPECT_EQ(log.count_event("tcp"), 0u);
}

namespace {
/// Collects streamed records for the writer tests.
struct CollectingWriter final : TraceWriter {
  std::vector<TraceRecord> seen;
  void on_record(const TraceRecord& record) override {
    seen.push_back(record);
  }
};
}  // namespace

TEST(TraceStreaming, WriterSeesEveryRecordInOrder) {
  TraceLog log;
  CollectingWriter writer;
  log.set_writer(&writer);
  log.record(1, 1, TraceCategory::kUpdate, "a", "d1");
  log.record(2, 2, TraceCategory::kFailure, "b");
  ASSERT_EQ(writer.seen.size(), 2u);
  EXPECT_EQ(writer.seen[0].detail, "d1");
  EXPECT_EQ(writer.seen[1].span, 2u);
}

TEST(TraceStreaming, StoreOffKeepsFingerprintAndCount) {
  TraceLog stored;
  TraceLog streamed;
  CollectingWriter writer;
  streamed.set_store(false);
  streamed.set_writer(&writer);
  for (auto* log : {&stored, &streamed}) {
    log->record(seconds(1), 1, TraceCategory::kUpdate, "change", "v=2");
    log->record(seconds(2), 11, TraceCategory::kUpdate, "notify", "v=2");
  }
  EXPECT_TRUE(streamed.records().empty());
  EXPECT_EQ(streamed.appended(), 2u);
  EXPECT_EQ(streamed.fingerprint(), stored.fingerprint());
  ASSERT_EQ(writer.seen.size(), 2u);
  EXPECT_EQ(writer.seen[1].node, 11u);
}

TEST(TraceFingerprint, CoversBehaviouralFieldsAndCount) {
  TraceLog a;
  TraceLog b;
  a.record(1, 1, TraceCategory::kInfo, "x");
  b.record(1, 1, TraceCategory::kInfo, "x");
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
  // Reading the fingerprint must not perturb it.
  EXPECT_EQ(a.fingerprint(), a.fingerprint());
  b.record(2, 1, TraceCategory::kInfo, "y");
  EXPECT_NE(a.fingerprint(), b.fingerprint());
  // Span parentage is excluded: the same behavioural sequence hashes
  // identically whether the second record is a root or a child.
  TraceLog c;
  const SpanId root = c.record(1, 1, TraceCategory::kInfo, "x");
  c.record_child(root, 2, 1, TraceCategory::kInfo, "y");
  EXPECT_EQ(b.fingerprint(), c.fingerprint());
}

}  // namespace
}  // namespace sdcm::sim

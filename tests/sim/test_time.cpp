#include "sdcm/sim/time.hpp"

#include <gtest/gtest.h>

namespace sdcm::sim {
namespace {

TEST(Time, UnitConstructors) {
  EXPECT_EQ(microseconds(7), 7);
  EXPECT_EQ(milliseconds(3), 3000);
  EXPECT_EQ(seconds(2), 2'000'000);
  EXPECT_EQ(seconds(5400), 5'400'000'000LL);
}

TEST(Time, FractionalSecondsRoundsToNearestMicrosecond) {
  EXPECT_EQ(seconds_f(1.0), 1'000'000);
  EXPECT_EQ(seconds_f(0.15 * 5400.0), 810'000'000LL);  // the paper's example
  EXPECT_EQ(seconds_f(0.0000005), 1);                  // 0.5 us rounds up
  EXPECT_EQ(seconds_f(0.0000004), 0);
  EXPECT_EQ(seconds_f(-1.5), -1'500'000);
}

TEST(Time, ToSecondsRoundTrip) {
  EXPECT_DOUBLE_EQ(to_seconds(seconds(5400)), 5400.0);
  EXPECT_DOUBLE_EQ(to_seconds(microseconds(10)), 1e-5);
}

TEST(Time, FormatTime) {
  EXPECT_EQ(format_time(seconds(1)), "1.000000s");
  EXPECT_EQ(format_time(microseconds(1'234'567)), "1.234567s");
}

}  // namespace
}  // namespace sdcm::sim

#include "sdcm/sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace sdcm::sim {
namespace {

TEST(EventQueue, EmptyInitially) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(30, [&] { order.push_back(3); });
  q.schedule(10, [&] { order.push_back(1); });
  q.schedule(20, [&] { order.push_back(2); });
  while (!q.empty()) q.pop().cb();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, SameTimeIsFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.schedule(100, [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.pop().cb();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(EventQueue, NextTimeReportsEarliestLive) {
  EventQueue q;
  const auto early = q.schedule(5, [] {});
  q.schedule(50, [] {});
  EXPECT_EQ(q.next_time(), 5);
  q.cancel(early);
  EXPECT_EQ(q.next_time(), 50);
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue q;
  bool fired = false;
  const auto id = q.schedule(10, [&] { fired = true; });
  q.cancel(id);
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelUnknownOrFiredIsNoop) {
  EventQueue q;
  const auto id = q.schedule(1, [] {});
  auto fired = q.pop();
  fired.cb();
  q.cancel(id);             // already fired
  q.cancel(9999);           // never existed
  q.cancel(kInvalidEventId);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, CancelMiddleKeepsOthers) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(1, [&] { order.push_back(1); });
  const auto mid = q.schedule(2, [&] { order.push_back(2); });
  q.schedule(3, [&] { order.push_back(3); });
  q.cancel(mid);
  EXPECT_EQ(q.size(), 2u);
  while (!q.empty()) q.pop().cb();
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(EventQueue, PopReturnsScheduledTimeAndId) {
  EventQueue q;
  const auto id = q.schedule(77, [] {});
  const auto fired = q.pop();
  EXPECT_EQ(fired.at, 77);
  EXPECT_EQ(fired.id, id);
}

TEST(EventQueue, ManyCancellationsDoNotLeak) {
  EventQueue q;
  std::vector<EventId> ids;
  for (int i = 0; i < 1000; ++i) ids.push_back(q.schedule(i, [] {}));
  for (const auto id : ids) q.cancel(id);
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
  // A fresh event still works after mass cancellation.
  bool fired = false;
  q.schedule(5000, [&] { fired = true; });
  q.pop().cb();
  EXPECT_TRUE(fired);
}

}  // namespace
}  // namespace sdcm::sim

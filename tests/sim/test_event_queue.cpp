#include "sdcm/sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstdint>
#include <vector>

#include "sdcm/sim/random.hpp"

namespace sdcm::sim {
namespace {

TEST(EventQueue, EmptyInitially) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(30, [&] { order.push_back(3); });
  q.schedule(10, [&] { order.push_back(1); });
  q.schedule(20, [&] { order.push_back(2); });
  while (!q.empty()) q.pop().cb();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, SameTimeIsFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.schedule(100, [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.pop().cb();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(EventQueue, NextTimeReportsEarliestLive) {
  EventQueue q;
  const auto early = q.schedule(5, [] {});
  q.schedule(50, [] {});
  EXPECT_EQ(q.next_time(), 5);
  q.cancel(early);
  EXPECT_EQ(q.next_time(), 50);
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue q;
  bool fired = false;
  const auto id = q.schedule(10, [&] { fired = true; });
  q.cancel(id);
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelUnknownOrFiredIsNoop) {
  EventQueue q;
  const auto id = q.schedule(1, [] {});
  auto fired = q.pop();
  fired.cb();
  q.cancel(id);             // already fired
  q.cancel(9999);           // never existed
  q.cancel(kInvalidEventId);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, CancelMiddleKeepsOthers) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(1, [&] { order.push_back(1); });
  const auto mid = q.schedule(2, [&] { order.push_back(2); });
  q.schedule(3, [&] { order.push_back(3); });
  q.cancel(mid);
  EXPECT_EQ(q.size(), 2u);
  while (!q.empty()) q.pop().cb();
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(EventQueue, PopReturnsScheduledTimeAndId) {
  EventQueue q;
  const auto id = q.schedule(77, [] {});
  const auto fired = q.pop();
  EXPECT_EQ(fired.at, 77);
  EXPECT_EQ(fired.id, id);
}

TEST(EventQueue, ManyCancellationsDoNotLeak) {
  EventQueue q;
  std::vector<EventId> ids;
  for (int i = 0; i < 1000; ++i) ids.push_back(q.schedule(i, [] {}));
  for (const auto id : ids) q.cancel(id);
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
  // A fresh event still works after mass cancellation.
  bool fired = false;
  q.schedule(5000, [&] { fired = true; });
  q.pop().cb();
  EXPECT_TRUE(fired);
}

TEST(EventQueue, StaleCancelAfterSlotReuseIsNoop) {
  // The slab recycles slots: after `first` is cancelled, the next
  // schedule reuses its slot. A second cancel of the stale id must not
  // kill the new tenant (generation mismatch).
  EventQueue q;
  const auto first = q.schedule(10, [] {});
  q.cancel(first);
  bool fired = false;
  const auto second = q.schedule(20, [&] { fired = true; });
  EXPECT_NE(first, second);
  q.cancel(first);  // stale: same slot, older generation
  ASSERT_EQ(q.size(), 1u);
  q.pop().cb();
  EXPECT_TRUE(fired);
}

TEST(EventQueue, StaleCancelAfterFireAndReuseIsNoop) {
  EventQueue q;
  const auto first = q.schedule(1, [] {});
  q.pop();
  bool fired = false;
  q.schedule(2, [&] { fired = true; });
  q.cancel(first);  // fired id whose slot now hosts the new event
  ASSERT_EQ(q.size(), 1u);
  q.pop().cb();
  EXPECT_TRUE(fired);
}

TEST(EventQueue, InterleavedStormKeepsSizeAndStatsExact) {
  // Deterministic schedule/cancel storm checked against a naive
  // reference model: size() and every KernelStats field must stay exact,
  // and events must pop in (time, schedule-order) order.
  EventQueue q;
  Random rng(2024);
  struct Pending {
    EventId id;
    SimTime at;
    std::uint64_t seq;
  };
  std::vector<Pending> pending;
  std::uint64_t next_seq = 0;
  std::uint64_t scheduled = 0;
  std::uint64_t cancelled = 0;
  std::uint64_t fired = 0;
  std::uint64_t max_live = 0;
  SimTime now = 0;

  for (int round = 0; round < 5000; ++round) {
    const auto action = rng.uniform_int(0, 9);
    if (action < 5 || pending.empty()) {
      const SimTime at = now + rng.uniform_int(1, 1000);
      pending.push_back({q.schedule(at, [] {}), at, next_seq++});
      ++scheduled;
      max_live = std::max<std::uint64_t>(max_live, pending.size());
    } else if (action < 8) {
      const auto victim = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(pending.size()) - 1));
      q.cancel(pending[victim].id);
      pending.erase(pending.begin() + static_cast<std::ptrdiff_t>(victim));
      ++cancelled;
    } else if (!q.empty()) {
      const auto f = q.pop();
      ++fired;
      now = f.at;
      const auto expected = std::min_element(
          pending.begin(), pending.end(), [](const auto& a, const auto& b) {
            return a.at != b.at ? a.at < b.at : a.seq < b.seq;
          });
      ASSERT_NE(expected, pending.end());
      EXPECT_EQ(f.id, expected->id);
      EXPECT_EQ(f.at, expected->at);
      pending.erase(expected);
    }
    ASSERT_EQ(q.size(), pending.size());
    EXPECT_EQ(q.empty(), pending.empty());
  }

  EXPECT_EQ(q.stats().events_scheduled, scheduled);
  EXPECT_EQ(q.stats().events_cancelled, cancelled);
  EXPECT_EQ(q.stats().events_fired, fired);
  EXPECT_EQ(q.stats().peak_heap_size, max_live);
  EXPECT_EQ(scheduled, fired + cancelled + q.size());

  // Drain: the survivors still pop in exact reference order.
  while (!q.empty()) {
    const auto f = q.pop();
    const auto expected = std::min_element(
        pending.begin(), pending.end(), [](const auto& a, const auto& b) {
          return a.at != b.at ? a.at < b.at : a.seq < b.seq;
        });
    EXPECT_EQ(f.id, expected->id);
    pending.erase(expected);
  }
  EXPECT_TRUE(pending.empty());
  EXPECT_EQ(q.stats().events_scheduled,
            q.stats().events_fired + q.stats().events_cancelled);
}

TEST(EventQueue, LeaseChurnCallbacksDoNotAllocate) {
  // The tentpole claim: cancel/reschedule churn with timer-sized
  // captures must not touch the heap for callback storage.
  EventQueue q;
  struct Lease {
    int renews = 0;
  };
  std::array<Lease, 8> leases{};
  std::array<EventId, 8> timers{};
  for (std::size_t i = 0; i < leases.size(); ++i) {
    Lease* lease = &leases[i];
    timers[i] = q.schedule(static_cast<SimTime>(i), [lease] { ++lease->renews; });
  }
  for (int round = 0; round < 100; ++round) {
    for (std::size_t i = 0; i < leases.size(); ++i) {
      q.cancel(timers[i]);
      Lease* lease = &leases[i];
      const std::uint64_t deadline = 1000 + static_cast<std::uint64_t>(round);
      timers[i] = q.schedule(static_cast<SimTime>(deadline),
                             [lease, deadline, round] {
                               lease->renews += static_cast<int>(deadline) + round;
                             });
    }
  }
  EXPECT_EQ(q.stats().callback_heap_allocs, 0u);
  EXPECT_EQ(q.stats().events_scheduled, 8u + 8u * 100u);
  EXPECT_EQ(q.stats().events_cancelled, 8u * 100u);
}

TEST(EventQueue, OversizedCallbackIsCountedAsHeapAlloc) {
  EventQueue q;
  std::array<std::uint64_t, 16> big{};
  big[3] = 9;
  std::uint64_t out = 0;
  q.schedule(1, [big, &out] { out = big[3]; });
  EXPECT_EQ(q.stats().callback_heap_allocs, 1u);
  q.pop().cb();
  EXPECT_EQ(out, 9u);
}

TEST(EventQueue, PeakHeapSizeTracksHighWaterMark) {
  EventQueue q;
  std::vector<EventId> ids;
  for (int i = 0; i < 10; ++i) ids.push_back(q.schedule(i, [] {}));
  for (int i = 0; i < 5; ++i) q.cancel(ids[static_cast<std::size_t>(i)]);
  q.schedule(100, [] {});
  EXPECT_EQ(q.stats().peak_heap_size, 10u);
  EXPECT_EQ(q.size(), 6u);
}

TEST(EventQueue, BindStatsSharesAnExternalBlock) {
  KernelStats shared;
  EventQueue q;
  q.bind_stats(&shared);
  const auto id = q.schedule(1, [] {});
  q.cancel(id);
  q.schedule(2, [] {});
  q.pop();
  EXPECT_EQ(shared.events_scheduled, 2u);
  EXPECT_EQ(shared.events_cancelled, 1u);
  EXPECT_EQ(shared.events_fired, 1u);
}

TEST(EventQueue, CancelDuringDenseSameTimeGroupKeepsFifo) {
  EventQueue q;
  std::vector<int> order;
  std::vector<EventId> ids;
  for (int i = 0; i < 20; ++i) {
    ids.push_back(q.schedule(50, [&order, i] { order.push_back(i); }));
  }
  for (int i = 1; i < 20; i += 2) q.cancel(ids[static_cast<std::size_t>(i)]);
  while (!q.empty()) q.pop().cb();
  std::vector<int> expected;
  for (int i = 0; i < 20; i += 2) expected.push_back(i);
  EXPECT_EQ(order, expected);
}

}  // namespace
}  // namespace sdcm::sim

#include "sdcm/sim/random.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <set>

namespace sdcm::sim {
namespace {

TEST(Random, DeterministicForSameSeed) {
  Random a(42), b(42);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Random, DifferentSeedsDiffer) {
  Random a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Random, UniformIntStaysInClosedRange) {
  Random r(7);
  for (int i = 0; i < 10000; ++i) {
    const auto v = r.uniform_int(10, 100);
    ASSERT_GE(v, 10);
    ASSERT_LE(v, 100);
  }
}

TEST(Random, UniformIntHitsBothEndpoints) {
  Random r(9);
  bool lo = false, hi = false;
  for (int i = 0; i < 1000 && !(lo && hi); ++i) {
    const auto v = r.uniform_int(0, 7);
    lo = lo || v == 0;
    hi = hi || v == 7;
  }
  EXPECT_TRUE(lo);
  EXPECT_TRUE(hi);
}

TEST(Random, UniformIntSinglePoint) {
  Random r(3);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(r.uniform_int(5, 5), 5);
}

TEST(Random, UniformIntIsRoughlyUniform) {
  Random r(11);
  std::array<int, 10> buckets{};
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    buckets[static_cast<std::size_t>(r.uniform_int(0, 9))]++;
  }
  // Chi-square with 9 dof; 99.9% critical value is ~27.9.
  double chi2 = 0;
  const double expected = kDraws / 10.0;
  for (const int count : buckets) {
    const double d = count - expected;
    chi2 += d * d / expected;
  }
  EXPECT_LT(chi2, 27.9);
}

TEST(Random, Uniform01InHalfOpenUnitInterval) {
  Random r(13);
  for (int i = 0; i < 10000; ++i) {
    const double v = r.uniform01();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
  }
}

TEST(Random, UniformRealRespectsBounds) {
  Random r(17);
  for (int i = 0; i < 1000; ++i) {
    const double v = r.uniform_real(-2.5, 7.5);
    ASSERT_GE(v, -2.5);
    ASSERT_LT(v, 7.5);
  }
}

TEST(Random, BernoulliEdgeCases) {
  Random r(19);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.bernoulli(0.0));
    EXPECT_TRUE(r.bernoulli(1.0));
    EXPECT_FALSE(r.bernoulli(-0.5));
    EXPECT_TRUE(r.bernoulli(1.5));
  }
}

TEST(Random, BernoulliFrequency) {
  Random r(23);
  int hits = 0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) hits += r.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / static_cast<double>(kDraws), 0.3, 0.01);
}

TEST(Random, ForkIsReadOnlyOnParent) {
  Random a(31), b(31);
  (void)a.fork(1);
  (void)a.fork(2);
  (void)a.fork("label");
  for (int i = 0; i < 100; ++i) ASSERT_EQ(a.next_u64(), b.next_u64());
}

TEST(Random, ForkedStreamsAreStableAndDistinct) {
  Random parent(37);
  Random c1 = parent.fork(1);
  Random c1_again = parent.fork(1);
  Random c2 = parent.fork(2);
  EXPECT_EQ(c1.next_u64(), c1_again.next_u64());
  Random c1b = parent.fork(1);
  EXPECT_NE(c1b.next_u64(), c2.next_u64());
}

TEST(Random, LabelForkMatchesHashFork) {
  Random parent(41);
  Random by_label = parent.fork("network.delays");
  Random by_hash = parent.fork(fnv1a64("network.delays"));
  for (int i = 0; i < 10; ++i) {
    ASSERT_EQ(by_label.next_u64(), by_hash.next_u64());
  }
}

TEST(Random, IndexCoversRange) {
  Random r(43);
  std::set<std::size_t> seen;
  for (int i = 0; i < 200; ++i) seen.insert(r.index(5));
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 4u);
}

TEST(Random, UniformTimeMatchesPaperChangeWindow) {
  Random r(47);
  for (int i = 0; i < 1000; ++i) {
    const SimTime t = r.uniform_time(seconds(100), seconds(2700));
    ASSERT_GE(t, seconds(100));
    ASSERT_LE(t, seconds(2700));
  }
}

TEST(Random, Fnv1aKnownValues) {
  // Reference vectors for 64-bit FNV-1a.
  EXPECT_EQ(fnv1a64(""), 0xCBF29CE484222325ULL);
  EXPECT_EQ(fnv1a64("a"), 0xAF63DC4C8601EC8CULL);
}

}  // namespace
}  // namespace sdcm::sim

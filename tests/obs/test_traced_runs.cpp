// Property tests over whole traced runs: the causal-span invariants hold
// for every protocol model at every failure regime, and (in SDCM_OBS
// builds) the hot-path histograms agree with the paper's transport model.
#include <gtest/gtest.h>

#include <string>

#include "sdcm/experiment/scenario.hpp"
#include "sdcm/obs/instrument.hpp"
#include "sdcm/obs/span_tree.hpp"

namespace sdcm::obs {
namespace {

using experiment::ExperimentConfig;
using experiment::kAllModels;
using experiment::run_experiment_traced;
using experiment::SystemModel;

TEST(TracedRuns, SpanGraphIsAForestForEveryModelAndFailureRate) {
  for (const SystemModel model : kAllModels) {
    for (const double lambda : {0.0, 0.3, 0.9}) {
      ExperimentConfig config;
      config.model = model;
      config.lambda = lambda;
      config.seed = 20060425;
      const auto traced = run_experiment_traced(config);
      ASSERT_FALSE(traced.trace.records().empty());
      const auto violation = check_span_forest(traced.trace.records());
      EXPECT_EQ(violation, std::nullopt)
          << to_string(model) << " lambda " << lambda << ": " << *violation;
    }
  }
}

TEST(TracedRuns, TracedAndPlainRunsAgreeOnBehaviour) {
  // run_experiment_traced must replay the exact run run_experiment does:
  // same seed, same record, same fingerprint.
  ExperimentConfig config;
  config.model = SystemModel::kFrodoThreeParty;
  config.lambda = 0.3;
  config.seed = 7;
  config.record_trace = true;
  const auto plain = experiment::run_experiment(config);
  const auto traced = run_experiment_traced(config);
  EXPECT_EQ(traced.record.trace_fingerprint, plain.trace_fingerprint);
  EXPECT_EQ(traced.trace.fingerprint(), plain.trace_fingerprint);
  EXPECT_EQ(traced.record.update_messages, plain.update_messages);
}

TEST(TracedRuns, HopDelayHistogramMatchesTable3TransportModel) {
#if !SDCM_OBS_ENABLED
  GTEST_SKIP() << "build with -DSDCM_OBS=ON to instrument hot paths";
#else
  // Table 3: every per-hop delay is drawn U(10 us, 100 us). On a
  // failure-free run the histogram must lie entirely inside that range.
  ExperimentConfig config;
  config.model = SystemModel::kFrodoThreeParty;
  config.lambda = 0.0;
  config.seed = 1;
  const auto traced = run_experiment_traced(config);
  const Histogram* hops = traced.obs.find_histogram("net.hop_delay_us");
  ASSERT_NE(hops, nullptr);
  ASSERT_GT(hops->count(), 0u);
  EXPECT_GE(hops->min(), 10u);
  EXPECT_LE(hops->max(), 100u);
  // The fixed bounds {9,10,25,50,75,100} bracket the range: nothing may
  // land in the (0,9] underflow or the >100 overflow bucket.
  for (const auto& bucket : hops->buckets()) {
    EXPECT_GT(bucket.upper, 9u);
    EXPECT_LE(bucket.upper, 100u);
  }
#endif
}

TEST(TracedRuns, NotificationLatencyIsRecordedPerReachedUser) {
#if !SDCM_OBS_ENABLED
  GTEST_SKIP() << "build with -DSDCM_OBS=ON to instrument hot paths";
#else
  ExperimentConfig config;
  config.model = SystemModel::kFrodoThreeParty;
  config.lambda = 0.0;
  config.seed = 1;
  const auto traced = run_experiment_traced(config);
  const Histogram* latency =
      traced.obs.find_histogram("update.notification_latency_us");
  ASSERT_NE(latency, nullptr);
  std::uint64_t reached = 0;
  for (const auto& t : traced.record.user_reach_times) {
    if (t.has_value()) ++reached;
  }
  EXPECT_EQ(latency->count(), reached);
  EXPECT_EQ(reached, 5u);  // failure-free: all users reach version 2
#endif
}

TEST(TracedRuns, ObsInstrumentationDoesNotPerturbTheTrace) {
  // Whether SDCM_OBS is ON or OFF, the simulated behaviour is pinned by
  // the same golden (see tests/integration/test_trace_equivalence.cpp);
  // here we assert the registry's population is consistent with the
  // build mode.
  ExperimentConfig config;
  config.model = SystemModel::kUpnp;
  config.lambda = 0.3;
  config.seed = 3;
  const auto traced = run_experiment_traced(config);
#if SDCM_OBS_ENABLED
  EXPECT_FALSE(traced.obs.empty());
#else
  EXPECT_TRUE(traced.obs.empty());
#endif
}

}  // namespace
}  // namespace sdcm::obs

#include "sdcm/obs/span_tree.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <span>
#include <sstream>
#include <string>
#include <vector>

namespace sdcm::obs {
namespace {

using sim::SpanScope;
using sim::TraceCategory;
using sim::TraceLog;
using sim::TraceRecord;

/// root -> {a -> {leaf}, b}, plus one unparented record.
TraceLog make_sample_log() {
  TraceLog log;
  const auto root =
      log.record(sim::seconds(1), 10, TraceCategory::kUpdate, "change");
  {
    SpanScope scope(log, root);
    const auto a =
        log.record(sim::seconds(2), 1, TraceCategory::kUpdate, "fan.a");
    log.record(sim::seconds(2), 1, TraceCategory::kUpdate, "fan.b");
    SpanScope inner(log, a);
    log.record(sim::seconds(3), 11, TraceCategory::kUpdate, "leaf");
  }
  log.record(sim::seconds(9), 2, TraceCategory::kInfo, "unrelated");
  return log;
}

TEST(SpanTree, BuildsForestWithCorrectEdges) {
  const TraceLog log = make_sample_log();
  const SpanForest forest = build_span_forest(log.records());
  ASSERT_EQ(forest.nodes.size(), 5u);
  ASSERT_EQ(forest.roots.size(), 2u);
  const auto* root = forest.find(1);
  ASSERT_NE(root, nullptr);
  EXPECT_EQ(root->record->event, "change");
  ASSERT_EQ(root->children.size(), 2u);
  EXPECT_EQ(forest.nodes[root->children[0]].record->event, "fan.a");
  EXPECT_EQ(forest.nodes[root->children[1]].record->event, "fan.b");
  const auto* a = forest.find(2);
  ASSERT_EQ(a->children.size(), 1u);
  EXPECT_EQ(forest.nodes[a->children[0]].record->event, "leaf");
  EXPECT_EQ(forest.find(99), nullptr);
}

TEST(SpanTree, AbsentParentsBecomeRoots) {
  // A filtered subset (here: drop the root) must stay printable: the
  // orphaned children are promoted to roots instead of being lost.
  const TraceLog log = make_sample_log();
  const std::span<const TraceRecord> all = log.records();
  const SpanForest forest = build_span_forest(all.subspan(1));
  ASSERT_EQ(forest.nodes.size(), 4u);
  EXPECT_EQ(forest.roots.size(), 3u);  // fan.a, fan.b, unrelated
}

TEST(SpanTree, CheckAcceptsAnyRecordedLog) {
  const TraceLog log = make_sample_log();
  EXPECT_EQ(check_span_forest(log.records()), std::nullopt);
}

TEST(SpanTree, CheckRejectsInvalidSpans) {
  TraceRecord r1;
  r1.at = 10;
  r1.span = 1;
  TraceRecord r2;
  r2.at = 20;
  r2.span = 2;

  // Non-increasing span ids.
  TraceRecord dup = r1;
  EXPECT_NE(check_span_forest(std::vector<TraceRecord>{r1, dup}),
            std::nullopt);

  // Parent not smaller than the child's own span.
  TraceRecord self = r2;
  self.parent = 2;
  EXPECT_NE(check_span_forest(std::vector<TraceRecord>{r1, self}),
            std::nullopt);

  // Parent's timestamp after the child's.
  TraceRecord early = r2;
  early.parent = 1;
  early.at = 5;  // before its parent's at = 10
  EXPECT_NE(check_span_forest(std::vector<TraceRecord>{r1, early}),
            std::nullopt);

  // The valid version of the same shape passes.
  TraceRecord child = r2;
  child.parent = 1;
  EXPECT_EQ(check_span_forest(std::vector<TraceRecord>{r1, child}),
            std::nullopt);
}

TEST(SpanTree, PrintShowsIndentationAndEdgeLatency) {
  const TraceLog log = make_sample_log();
  const SpanForest forest = build_span_forest(log.records());
  std::ostringstream oss;
  print_span_tree(oss, forest, 0);
  const std::string out = oss.str();
  EXPECT_NE(out.find("change"), std::string::npos);
  EXPECT_NE(out.find("leaf"), std::string::npos);
  // Edge latencies: change -> fan.a is 1 s, fan.a -> leaf is 1 s.
  EXPECT_NE(out.find("(+1000000 us)"), std::string::npos);
  // Only the subtree: the unrelated root is not printed.
  EXPECT_EQ(out.find("unrelated"), std::string::npos);
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);

  std::ostringstream whole;
  print_span_forest(whole, forest);
  const std::string all = whole.str();
  EXPECT_NE(all.find("unrelated"), std::string::npos);
  EXPECT_EQ(std::count(all.begin(), all.end(), '\n'), 5);
}

}  // namespace
}  // namespace sdcm::obs

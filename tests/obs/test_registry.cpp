#include "sdcm/obs/registry.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace sdcm::obs {
namespace {

TEST(Counter, IncrementsAndResets) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(FixedHistogram, AssignsValuesToBoundedBuckets) {
  Histogram h(std::vector<std::uint64_t>{10, 100, 1000});
  h.record(5);     // (0, 10]
  h.record(10);    // boundary lands in (0, 10]
  h.record(11);    // (10, 100]
  h.record(1000);  // (100, 1000]
  EXPECT_EQ(h.count(), 4u);
  EXPECT_TRUE(h.is_fixed());
  const auto buckets = h.buckets();
  ASSERT_EQ(buckets.size(), 3u);
  EXPECT_EQ(buckets[0].upper, 10u);
  EXPECT_EQ(buckets[0].count, 2u);
  EXPECT_EQ(buckets[1].upper, 100u);
  EXPECT_EQ(buckets[1].count, 1u);
  EXPECT_EQ(buckets[2].upper, 1000u);
  EXPECT_EQ(buckets[2].count, 1u);
}

TEST(FixedHistogram, OverflowBucketCatchesValuesAboveLastBound) {
  Histogram h(std::vector<std::uint64_t>{10});
  h.record(11);
  const auto buckets = h.buckets();
  ASSERT_EQ(buckets.size(), 1u);
  EXPECT_EQ(buckets[0].upper, std::numeric_limits<std::uint64_t>::max());
  EXPECT_EQ(h.max(), 11u);
}

TEST(Histogram, SummaryStatistics) {
  Histogram h;
  EXPECT_EQ(h.min(), 0u);  // empty histogram reads as all-zero
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.quantile_upper(0.5), 0u);
  for (std::uint64_t v = 1; v <= 100; ++v) h.record(v);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_EQ(h.sum(), 5050u);
  EXPECT_EQ(h.min(), 1u);
  EXPECT_EQ(h.max(), 100u);
  EXPECT_DOUBLE_EQ(h.mean(), 50.5);
  // quantile_upper is an upper bound, tight to the bucket resolution
  // (exact here below sub_buckets, within 1/32 above).
  EXPECT_GE(h.quantile_upper(0.5), 50u);
  EXPECT_LE(h.quantile_upper(0.5), 52u);
  EXPECT_EQ(h.quantile_upper(1.0), 100u);
}

TEST(Histogram, LogLinearBucketUpperBoundsValueWithinRelativeError) {
  // HDR guarantee: the bucket's inclusive upper bound never understates
  // the recorded value and overstates it by at most 1/sub_buckets.
  for (const std::uint64_t v :
       {std::uint64_t{0}, std::uint64_t{1}, std::uint64_t{31},
        std::uint64_t{32}, std::uint64_t{33}, std::uint64_t{63},
        std::uint64_t{64}, std::uint64_t{1000}, std::uint64_t{123456},
        std::uint64_t{5400000000}}) {
    Histogram h;  // sub_buckets = 32
    h.record(v);
    const auto buckets = h.buckets();
    ASSERT_EQ(buckets.size(), 1u) << "value " << v;
    EXPECT_GE(buckets[0].upper, v);
    EXPECT_LE(buckets[0].upper, v + v / 32 + 1) << "value " << v;
  }
}

TEST(Histogram, ResetClearsEverything) {
  Histogram h;
  h.record(7);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_TRUE(h.buckets().empty());
  Histogram fixed(std::vector<std::uint64_t>{10});
  fixed.record(3);
  fixed.reset();
  EXPECT_TRUE(fixed.buckets().empty());
}

TEST(Registry, FindsOrCreatesByNameInDeterministicOrder) {
  Registry registry;
  EXPECT_TRUE(registry.empty());
  registry.counter("z").inc();
  registry.counter("a").inc(2);
  registry.histogram("m").record(1);
  EXPECT_FALSE(registry.empty());
  std::vector<std::string> names;
  for (const auto& [name, counter] : registry.counters()) {
    names.push_back(name);
  }
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "a");  // name order, not insertion order
  EXPECT_EQ(names[1], "z");
  EXPECT_EQ(registry.find_counter("a")->value(), 2u);
  EXPECT_EQ(registry.find_counter("missing"), nullptr);
  EXPECT_EQ(registry.find_histogram("m")->count(), 1u);
}

TEST(Registry, NodeAddressesAreStableAcrossInserts) {
  // Hot paths cache the pointer once; later inserts must not move it.
  Registry registry;
  Counter* cached = &registry.counter("hot");
  Histogram* cached_h = &registry.histogram("hot_h");
  for (int i = 0; i < 100; ++i) {
    std::string c_name = "c";
    c_name += std::to_string(i);
    std::string h_name = "h";
    h_name += std::to_string(i);
    registry.counter(c_name);
    registry.histogram(h_name);
  }
  EXPECT_EQ(cached, &registry.counter("hot"));
  EXPECT_EQ(cached_h, &registry.histogram("hot_h"));
}

TEST(Registry, FixedHistogramBoundsApplyOnlyOnCreation) {
  Registry registry;
  Histogram& h = registry.fixed_histogram("d", {10, 20});
  Histogram& again = registry.fixed_histogram("d", {999});
  EXPECT_EQ(&h, &again);
  h.record(15);
  EXPECT_EQ(h.buckets()[0].upper, 20u);
}

TEST(Registry, HeterogeneousStringViewLookupAvoidsAllocationOnHit) {
  Registry registry;
  registry.counter("net.messages").inc(3);
  registry.histogram("net.latency").record(7);
  // Lookups take string_view directly - no std::string construction at
  // the call site, and a miss on find_* stays read-only.
  const std::string_view counter_name = "net.messages";
  const std::string_view histogram_name = "net.latency";
  const Counter* counter = registry.find_counter(counter_name);
  ASSERT_NE(counter, nullptr);
  EXPECT_EQ(counter->value(), 3u);
  const Histogram* histogram = registry.find_histogram(histogram_name);
  ASSERT_NE(histogram, nullptr);
  EXPECT_EQ(histogram->count(), 1u);
  EXPECT_EQ(registry.find_counter(std::string_view("absent")), nullptr);
  // counter()/histogram() with a string_view reuse the existing entry.
  EXPECT_EQ(&registry.counter(counter_name), counter);
  EXPECT_EQ(&registry.histogram(histogram_name), histogram);
}

TEST(Histogram, RecordNBulkEquivalentToRepeatedRecords) {
  Histogram a(std::vector<std::uint64_t>{10, 100});
  Histogram b(std::vector<std::uint64_t>{10, 100});
  for (int i = 0; i < 1000; ++i) a.record(42);
  b.record_n(42, 1000);
  EXPECT_EQ(a.count(), b.count());
  EXPECT_EQ(a.sum(), b.sum());
  EXPECT_EQ(a.min(), b.min());
  EXPECT_EQ(a.max(), b.max());
  ASSERT_EQ(a.buckets().size(), b.buckets().size());
  for (std::size_t i = 0; i < a.buckets().size(); ++i) {
    EXPECT_EQ(a.buckets()[i].count, b.buckets()[i].count);
  }
}

TEST(Registry, PutHistogramReplacesOrInserts) {
  Registry registry;
  Histogram prebuilt(std::vector<std::uint64_t>{250, 1000});
  prebuilt.record_n(500, 4);
  registry.put_histogram("profile.event.x", std::move(prebuilt));
  const Histogram* found = registry.find_histogram("profile.event.x");
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->count(), 4u);
  Histogram replacement(std::vector<std::uint64_t>{250, 1000});
  replacement.record_n(100, 9);
  registry.put_histogram("profile.event.x", std::move(replacement));
  found = registry.find_histogram("profile.event.x");
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->count(), 9u);
}

}  // namespace
}  // namespace sdcm::obs

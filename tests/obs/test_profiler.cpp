#include "sdcm/obs/profiler.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "sdcm/net/message_type.hpp"
#include "sdcm/obs/profile_site.hpp"
#include "sdcm/obs/registry.hpp"

namespace sdcm::obs {
namespace {

// Timing magnitudes are nondeterministic, so the tests pin what is
// deterministic: counts, site identity, ordering, merge algebra and the
// sum-to-loop invariant.

std::uint32_t site(const char* name) { return profile_site_id(name); }

TEST(Profiler, AttributesEveryEventToItsSite) {
  Profiler profiler;
  const std::uint32_t a = site("test.profiler.site_a");
  const std::uint32_t b = site("test.profiler.site_b");
  profiler.loop_begin();
  for (int i = 0; i < 3; ++i) {
    profiler.event_begin();
    profiler.attribute(a);
    profiler.event_end();
  }
  profiler.event_begin();
  profiler.attribute(b);
  profiler.event_end();
  profiler.event_begin();  // never attributed -> site 0
  profiler.event_end();
  profiler.loop_end();

  const RunProfile profile = profiler.snapshot();
  EXPECT_EQ(profile.runs, 1u);
  EXPECT_EQ(profile.loop_events, 5u);
  std::uint64_t count_a = 0;
  std::uint64_t count_b = 0;
  std::uint64_t count_unattributed = 0;
  for (const ProfileEntry& entry : profile.events) {
    if (entry.name == "test.profiler.site_a") count_a = entry.count;
    if (entry.name == "test.profiler.site_b") count_b = entry.count;
    if (entry.name == "(unattributed)") count_unattributed = entry.count;
  }
  EXPECT_EQ(count_a, 3u);
  EXPECT_EQ(count_b, 1u);
  EXPECT_EQ(count_unattributed, 1u);
}

TEST(Profiler, PerSiteTotalsSumExactlyToLoopTime) {
  Profiler profiler;
  const std::uint32_t a = site("test.profiler.sum_site");
  profiler.loop_begin();
  for (int i = 0; i < 100; ++i) {
    profiler.event_begin();
    profiler.attribute(a);
    profiler.event_end();
  }
  profiler.loop_end();
  const RunProfile profile = profiler.snapshot();
  // The chained-timestamp discipline charges every nanosecond between
  // loop_begin and the last event_end to some site; loop_end adds only
  // the tail after the final event.
  EXPECT_LE(profile.attributed_ns(), profile.loop_ns);
  EXPECT_GT(profile.attributed_ns(), 0u);
}

TEST(Profiler, SnapshotSortsEntriesBytewiseByName) {
  Profiler profiler;
  // Intern in an order unrelated to byte order.
  const std::uint32_t z = site("test.profiler.zzz");
  const std::uint32_t m = site("test.profiler.mmm");
  const std::uint32_t a2 = site("test.profiler.aaa");
  profiler.loop_begin();
  for (const std::uint32_t s : {z, m, a2}) {
    profiler.event_begin();
    profiler.attribute(s);
    profiler.event_end();
  }
  profiler.loop_end();
  const RunProfile profile = profiler.snapshot();
  ASSERT_GE(profile.events.size(), 3u);
  for (std::size_t i = 1; i < profile.events.size(); ++i) {
    EXPECT_LT(profile.events[i - 1].name, profile.events[i].name);
  }
}

TEST(Profiler, PhaseScopesAccumulateAndAreNullSafe) {
  Profiler profiler;
  const std::uint32_t phase = site("phase.test_profiler");
  { const PhaseScope scope(&profiler, phase); }
  { const PhaseScope scope(&profiler, phase); }
  { const PhaseScope scope(nullptr, phase); }  // must not crash
  const RunProfile profile = profiler.snapshot();
  ASSERT_EQ(profile.phases.size(), 1u);
  EXPECT_EQ(profile.phases[0].name, "phase.test_profiler");
  EXPECT_EQ(profile.phases[0].count, 2u);
}

TEST(Profiler, MemoryWatermarksAreSampledAtPhaseEnds) {
  const MemorySample sample = sample_memory();
  // getrusage is POSIX; a zero peak RSS would mean sampling silently
  // broke. heap_bytes may legitimately be 0 on non-glibc platforms.
  EXPECT_GT(sample.peak_rss_kb, 0u);
  Profiler profiler;
  { const PhaseScope scope(&profiler, site("phase.test_memory")); }
  const RunProfile profile = profiler.snapshot();
  ASSERT_EQ(profile.phases.size(), 1u);
  EXPECT_GE(profile.phases[0].peak_rss_kb, sample.peak_rss_kb);
}

TEST(Profiler, BucketBoundsAreStrictlyIncreasing) {
  const auto& bounds = profile_ns_bounds();
  ASSERT_FALSE(bounds.empty());
  for (std::size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_LT(bounds[i - 1], bounds[i]);
  }
}

RunProfile synthetic_profile(std::uint64_t scale) {
  // Deterministic profile built from fixed numbers (no clock), so merge
  // identities can be asserted exactly.
  RunProfile p;
  p.runs = 1;
  p.loop_ns = 1000 * scale;
  p.loop_events = 10 * scale;
  ProfileEntry e;
  e.name = "synthetic.event";
  e.count = 4 * scale;
  e.total_ns = 400 * scale;
  e.max_ns = 100 + scale;
  e.buckets.push_back({250, 3 * scale});
  e.buckets.push_back({1000, scale});
  p.events.push_back(e);
  PhaseEntry ph;
  ph.name = "phase.synthetic";
  ph.count = scale;
  ph.total_ns = 600 * scale;
  ph.peak_rss_kb = 1000 + scale;
  ph.heap_bytes = 2000 + scale;
  p.phases.push_back(ph);
  return p;
}

TEST(RunProfile, MergeAddsCountsAndMaxesWatermarks) {
  RunProfile a = synthetic_profile(1);
  const RunProfile b = synthetic_profile(5);
  a.merge(b);
  EXPECT_EQ(a.runs, 2u);
  EXPECT_EQ(a.loop_ns, 6000u);
  EXPECT_EQ(a.loop_events, 60u);
  ASSERT_EQ(a.events.size(), 1u);
  EXPECT_EQ(a.events[0].count, 24u);
  EXPECT_EQ(a.events[0].total_ns, 2400u);
  EXPECT_EQ(a.events[0].max_ns, 105u);  // max, not sum
  ASSERT_EQ(a.events[0].buckets.size(), 2u);
  EXPECT_EQ(a.events[0].buckets[0].count, 18u);
  EXPECT_EQ(a.events[0].buckets[1].count, 6u);
  ASSERT_EQ(a.phases.size(), 1u);
  EXPECT_EQ(a.phases[0].count, 6u);
  EXPECT_EQ(a.phases[0].peak_rss_kb, 1005u);  // max
  EXPECT_EQ(a.phases[0].heap_bytes, 2005u);   // max
}

TEST(RunProfile, MergeOfDisjointSitesKeepsSortedOrder) {
  RunProfile a;
  ProfileEntry e1;
  e1.name = "m.site";
  e1.count = 1;
  a.events.push_back(e1);
  RunProfile b;
  ProfileEntry e2;
  e2.name = "a.site";
  e2.count = 2;
  ProfileEntry e3;
  e3.name = "z.site";
  e3.count = 3;
  b.events.push_back(e2);
  b.events.push_back(e3);
  a.merge(b);
  ASSERT_EQ(a.events.size(), 3u);
  EXPECT_EQ(a.events[0].name, "a.site");
  EXPECT_EQ(a.events[1].name, "m.site");
  EXPECT_EQ(a.events[2].name, "z.site");
}

TEST(Profiler, FlushToRegistryExportsHistogramsAndCounters) {
  Profiler profiler;
  profiler.loop_begin();
  profiler.event_begin();
  profiler.attribute(site("test.profiler.flush"));
  profiler.event_end();
  profiler.loop_end();
  { const PhaseScope scope(&profiler, site("phase.test_flush")); }

  Registry registry;
  profiler.flush_to(registry);
  EXPECT_NE(registry.find_histogram("profile.event.test.profiler.flush"),
            nullptr);
  EXPECT_NE(
      registry.find_counter("profile.event.test.profiler.flush.total_ns"),
      nullptr);
  EXPECT_NE(registry.find_counter("profile.phase.phase.test_flush.count"),
            nullptr);
  const Counter* events = registry.find_counter("profile.loop.events");
  ASSERT_NE(events, nullptr);
  EXPECT_EQ(events->value(), 1u);
}

TEST(WriteRegistryText, PrintsCountersThenHistogramsInByteOrder) {
  Registry registry;
  registry.counter("zeta").inc(7);
  registry.counter("alpha").inc(1);
  registry.fixed_histogram("mid", {10, 100}).record(5);
  std::ostringstream out;
  write_registry_text(out, registry);
  const std::string text = out.str();
  const auto alpha = text.find("alpha");
  const auto zeta = text.find("zeta");
  const auto mid = text.find("mid");
  ASSERT_NE(alpha, std::string::npos);
  ASSERT_NE(zeta, std::string::npos);
  ASSERT_NE(mid, std::string::npos);
  // Bytewise-ascending counters first, then histograms.
  EXPECT_LT(alpha, zeta);
  EXPECT_LT(zeta, mid);
}

}  // namespace
}  // namespace sdcm::obs

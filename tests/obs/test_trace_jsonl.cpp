#include "sdcm/obs/trace_jsonl.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

namespace sdcm::obs {
namespace {

using sim::SpanScope;
using sim::TraceCategory;
using sim::TraceLog;
using sim::TraceRecord;

TraceLog make_log() {
  TraceLog log;
  const auto root = log.record(sim::seconds(188), 10, TraceCategory::kUpdate,
                               "frodo.service_changed", "service=1 version=2");
  SpanScope scope(log, root);
  log.record(sim::seconds(188) + 37, 1, TraceCategory::kUpdate,
             "frodo.update.stored", "service=1 version=2");
  // Exercise the only two escaped characters of the JSON discipline.
  log.record(sim::seconds(189), 11, TraceCategory::kInfo, "odd",
             "quote=\" backslash=\\ done");
  log.record_child(sim::kNoSpan, sim::seconds(200), 2,
                   TraceCategory::kFailure, "iface.down", "mode=tx+rx");
  return log;
}

TEST(TraceJsonl, RecordFormatsAsOneFixedOrderObject) {
  TraceRecord r;
  r.at = 42;
  r.node = 7;
  r.category = TraceCategory::kTransport;
  r.span = 3;
  r.parent = 1;
  r.event = "tcp.rex";
  r.detail = "to=2";
  EXPECT_EQ(trace_record_to_jsonl(r),
            "{\"at\":42,\"node\":7,\"category\":\"transport\",\"span\":3,"
            "\"parent\":1,\"event\":\"tcp.rex\",\"detail\":\"to=2\"}");
}

TEST(TraceJsonl, ParseInvertsFormat) {
  const TraceLog log = make_log();
  for (const TraceRecord& r : log.records()) {
    std::string error;
    const auto parsed = parse_trace_record(trace_record_to_jsonl(r), error);
    ASSERT_TRUE(parsed.has_value()) << error;
    EXPECT_EQ(parsed->at, r.at);
    EXPECT_EQ(parsed->node, r.node);
    EXPECT_EQ(parsed->category, r.category);
    EXPECT_EQ(parsed->span, r.span);
    EXPECT_EQ(parsed->parent, r.parent);
    EXPECT_EQ(parsed->event, r.event);
    EXPECT_EQ(parsed->detail, r.detail);
  }
}

TEST(TraceJsonl, ParseRejectsMalformedLines) {
  std::string error;
  EXPECT_FALSE(parse_trace_record("", error).has_value());
  EXPECT_FALSE(parse_trace_record("not json", error).has_value());
  // Unknown category name.
  EXPECT_FALSE(
      parse_trace_record(
          "{\"at\":1,\"node\":1,\"category\":\"bogus\",\"span\":1,"
          "\"parent\":0,\"event\":\"e\",\"detail\":\"\"}",
          error)
          .has_value());
  EXPECT_FALSE(error.empty());
  // Reordered keys are rejected: the format is exact, not generic JSON.
  EXPECT_FALSE(
      parse_trace_record(
          "{\"node\":1,\"at\":1,\"category\":\"info\",\"span\":1,"
          "\"parent\":0,\"event\":\"e\",\"detail\":\"\"}",
          error)
          .has_value());
  // Trailing garbage after the closing brace.
  EXPECT_FALSE(
      parse_trace_record(
          "{\"at\":1,\"node\":1,\"category\":\"info\",\"span\":1,"
          "\"parent\":0,\"event\":\"e\",\"detail\":\"\"}x",
          error)
          .has_value());
}

TEST(TraceJsonl, WriterCountsRecordsAndBytes) {
  std::ostringstream oss;
  JsonlTraceWriter writer(oss);
  const TraceLog log = make_log();
  for (const TraceRecord& r : log.records()) writer.on_record(r);
  EXPECT_EQ(writer.records_written(), log.records().size());
  EXPECT_EQ(writer.bytes_written(), oss.str().size());
  EXPECT_EQ(oss.str().back(), '\n');
}

TEST(TraceJsonl, RoundTripReproducesFingerprintAndSpans) {
  const TraceLog log = make_log();
  std::ostringstream oss;
  JsonlTraceWriter writer(oss);
  for (const TraceRecord& r : log.records()) writer.on_record(r);

  std::istringstream in(oss.str());
  TraceLog rebuilt;
  std::string error;
  ASSERT_TRUE(read_trace_jsonl(in, rebuilt, error)) << error;
  ASSERT_EQ(rebuilt.records().size(), log.records().size());
  EXPECT_EQ(rebuilt.fingerprint(), log.fingerprint());
  for (std::size_t i = 0; i < log.records().size(); ++i) {
    EXPECT_EQ(rebuilt.records()[i].span, log.records()[i].span);
    EXPECT_EQ(rebuilt.records()[i].parent, log.records()[i].parent);
    EXPECT_EQ(rebuilt.records()[i].detail, log.records()[i].detail);
  }
}

TEST(TraceJsonl, ReadRejectsStreamsWithBadLines) {
  std::istringstream in("{\"at\":broken\n");
  TraceLog log;
  std::string error;
  EXPECT_FALSE(read_trace_jsonl(in, log, error));
  EXPECT_FALSE(error.empty());
}

TEST(TraceJsonl, StreamingARunMatchesItsStoredTrace) {
  // The campaign streaming mode: storage off, writer on. The JSONL file
  // read back must carry the exact fingerprint of a stored run.
  std::ostringstream oss;
  JsonlTraceWriter writer(oss);
  TraceLog streamed;
  streamed.set_store(false);
  streamed.set_writer(&writer);
  TraceLog stored;
  for (auto* log : {&streamed, &stored}) {
    const auto root = log->record(sim::seconds(1), 10,
                                  TraceCategory::kUpdate, "change");
    log->record_child(root, sim::seconds(2), 11, TraceCategory::kUpdate,
                      "notify", "user=11");
  }
  std::istringstream in(oss.str());
  TraceLog rebuilt;
  std::string error;
  ASSERT_TRUE(read_trace_jsonl(in, rebuilt, error)) << error;
  EXPECT_EQ(rebuilt.fingerprint(), stored.fingerprint());
  EXPECT_EQ(rebuilt.fingerprint(), streamed.fingerprint());
}

}  // namespace
}  // namespace sdcm::obs

#include "sdcm/check/fuzz.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

namespace {

using namespace sdcm;
using check::FuzzCase;
using check::FuzzConfig;
using check::FuzzPlan;
using check::FuzzResult;
using experiment::SystemModel;

std::string describe_all(const check::OracleReport& report) {
  std::string out;
  for (const check::Violation& violation : report.violations) {
    out += violation.describe() + "\n";
  }
  return out;
}

/// The pinned regression: under the legacy boolean failure application,
/// two overlapping truncated episodes re-enable a node's interfaces
/// mid-outage; the refcounted application keeps them down.
FuzzCase pinned_overlap_case() {
  FuzzCase pinned;
  pinned.model = SystemModel::kUpnp;
  pinned.seed = 25;
  pinned.plan.lambda = 0.9;
  pinned.plan.episodes = 2;
  pinned.plan.placement = net::FailurePlacement::kTruncated;
  pinned.plan.message_loss_rate = 0.0;
  pinned.plan.converge_shape = false;
  return pinned;
}

TEST(FuzzPlanDraw, IsDeterministic) {
  FuzzConfig config;
  const check::FuzzPlan a =
      check::draw_fuzz_plan(SystemModel::kUpnp, 17, config);
  const check::FuzzPlan b =
      check::draw_fuzz_plan(SystemModel::kUpnp, 17, config);
  EXPECT_EQ(a.lambda, b.lambda);
  EXPECT_EQ(a.episodes, b.episodes);
  EXPECT_EQ(a.placement, b.placement);
  EXPECT_EQ(a.message_loss_rate, b.message_loss_rate);
  EXPECT_EQ(a.converge_shape, b.converge_shape);
}

TEST(FuzzPlanDraw, VariesAcrossSeedsAndModels) {
  FuzzConfig config;
  bool seed_varies = false;
  const check::FuzzPlan base =
      check::draw_fuzz_plan(SystemModel::kUpnp, 1, config);
  for (std::uint64_t seed = 2; seed <= 32 && !seed_varies; ++seed) {
    const check::FuzzPlan other =
        check::draw_fuzz_plan(SystemModel::kUpnp, seed, config);
    seed_varies = other.lambda != base.lambda ||
                  other.episodes != base.episodes ||
                  other.placement != base.placement ||
                  other.message_loss_rate != base.message_loss_rate ||
                  other.converge_shape != base.converge_shape;
  }
  EXPECT_TRUE(seed_varies);

  // Same seed, different model: the model name is folded into the
  // stream, so plans differ somewhere over a modest seed range.
  bool model_varies = false;
  for (std::uint64_t seed = 1; seed <= 32 && !model_varies; ++seed) {
    const check::FuzzPlan upnp =
        check::draw_fuzz_plan(SystemModel::kUpnp, seed, config);
    const check::FuzzPlan jini =
        check::draw_fuzz_plan(SystemModel::kJiniOneRegistry, seed, config);
    model_varies = upnp.lambda != jini.lambda ||
                   upnp.episodes != jini.episodes ||
                   upnp.placement != jini.placement ||
                   upnp.message_loss_rate != jini.message_loss_rate ||
                   upnp.converge_shape != jini.converge_shape;
  }
  EXPECT_TRUE(model_varies);
}

TEST(FuzzPlanDraw, ScopeIsDrawnLastSoExistingPlansReproduce) {
  // Enabling scope fuzzing must not re-roll any other plan dimension:
  // every pre-scoping (model, seed) repro stays bit-identical.
  FuzzConfig plain;
  FuzzConfig with_scopes;
  with_scopes.scope_choices = {net::MulticastScope::kScoped,
                               net::MulticastScope::kScopedRng,
                               net::MulticastScope::kBroadcast};
  bool scope_varies = false;
  for (std::uint64_t seed = 1; seed <= 32; ++seed) {
    const FuzzPlan a = check::draw_fuzz_plan(SystemModel::kUpnp, seed, plain);
    const FuzzPlan b =
        check::draw_fuzz_plan(SystemModel::kUpnp, seed, with_scopes);
    EXPECT_EQ(a.lambda, b.lambda);
    EXPECT_EQ(a.episodes, b.episodes);
    EXPECT_EQ(a.placement, b.placement);
    EXPECT_EQ(a.message_loss_rate, b.message_loss_rate);
    EXPECT_EQ(a.converge_shape, b.converge_shape);
    EXPECT_EQ(a.workload, b.workload);
    EXPECT_EQ(a.multicast_scope, net::MulticastScope::kScoped);
    if (b.multicast_scope != net::MulticastScope::kScoped) scope_varies = true;
  }
  EXPECT_TRUE(scope_varies);
}

TEST(FuzzSweep, ScopeChoicesReachTheRunAndStayClean) {
  FuzzConfig config;
  config.models = {SystemModel::kFrodoThreeParty};
  config.seed_begin = 1;
  config.seed_end = 7;
  config.workload_choices = {experiment::WorkloadKind::kChurn};
  config.scope_choices = {net::MulticastScope::kScopedRng};
  const FuzzResult result = check::run_fuzz(config);
  EXPECT_TRUE(result.ok());
  EXPECT_EQ(result.cases_run, 6u);
  // The plan's scope lands in the experiment config verbatim.
  FuzzCase fuzz_case;
  fuzz_case.model = SystemModel::kFrodoThreeParty;
  fuzz_case.seed = 1;
  fuzz_case.plan = check::draw_fuzz_plan(fuzz_case.model, 1, config);
  EXPECT_EQ(fuzz_case.plan.multicast_scope, net::MulticastScope::kScopedRng);
  const auto run_config = check::fuzz_experiment_config(fuzz_case, config);
  EXPECT_EQ(run_config.multicast_scope, net::MulticastScope::kScopedRng);
}

TEST(FuzzShrink, ScopeResetsBeforeEveryOtherDimension) {
  // to_string surfaces the non-default scope so repro lines paste back.
  FuzzPlan plan;
  plan.multicast_scope = net::MulticastScope::kScopedRng;
  plan.workload = experiment::WorkloadKind::kChurn;
  EXPECT_NE(check::to_string(plan).find("scope=scoped-rng"),
            std::string::npos);
  EXPECT_EQ(check::to_string(FuzzPlan{}).find("scope="), std::string::npos);
}

TEST(FuzzRegression, LegacyBooleanFailuresViolateInterfaceInvariant) {
  FuzzConfig config;
  config.failure_application = net::FailureApplication::kLegacyBoolean;
  const check::OracleReport report =
      check::run_fuzz_case(pinned_overlap_case(), config);
  ASSERT_FALSE(report.ok());
  bool interface_violation = false;
  for (const check::Violation& violation : report.violations) {
    if (violation.invariant == check::Invariant::kInterface) {
      interface_violation = true;
      break;
    }
  }
  EXPECT_TRUE(interface_violation) << describe_all(report);
}

TEST(FuzzRegression, RefcountedFailuresPassTheSameCase) {
  FuzzConfig config;
  config.failure_application = net::FailureApplication::kRefcounted;
  const check::OracleReport report =
      check::run_fuzz_case(pinned_overlap_case(), config);
  EXPECT_TRUE(report.ok()) << describe_all(report);
}

TEST(FuzzShrink, MinimizedCaseStillFailsAndKeepsTheOverlap) {
  FuzzConfig config;
  config.failure_application = net::FailureApplication::kLegacyBoolean;
  FuzzCase original = pinned_overlap_case();
  original.plan.message_loss_rate = 0.2;  // noise the shrinker must strip
  int shrink_runs = 0;
  const FuzzCase minimized =
      check::shrink_fuzz_case(original, config, shrink_runs);
  EXPECT_GT(shrink_runs, 0);
  EXPECT_EQ(minimized.plan.message_loss_rate, 0.0);
  // The bug needs at least two overlapping episodes; the shrinker must
  // not "minimize" its way past the failure.
  EXPECT_GE(minimized.plan.episodes, 2);
  EXPECT_EQ(minimized.plan.placement, net::FailurePlacement::kTruncated);
  const check::OracleReport report = check::run_fuzz_case(minimized, config);
  EXPECT_FALSE(report.ok());
}

TEST(FuzzSweep, CleanSweepFindsNothing) {
  FuzzConfig config;
  config.models = {SystemModel::kUpnp, SystemModel::kFrodoThreeParty};
  config.seed_begin = 1;
  config.seed_end = 5;
  const FuzzResult result = check::run_fuzz(config);
  EXPECT_TRUE(result.ok());
  EXPECT_EQ(result.cases_run, 8u);
  EXPECT_TRUE(result.findings.empty());
}

TEST(FuzzSweep, LegacySweepFindsAndShrinksTheOverlapBug) {
  FuzzConfig config;
  config.models = {SystemModel::kUpnp};
  config.seed_begin = 25;
  config.seed_end = 26;
  config.failure_application = net::FailureApplication::kLegacyBoolean;
  std::ostringstream log;
  config.log = &log;
  const FuzzResult result = check::run_fuzz(config);
  ASSERT_EQ(result.findings.size(), 1u);
  const check::FuzzFinding& finding = result.findings.front();
  EXPECT_EQ(finding.original.model, SystemModel::kUpnp);
  EXPECT_EQ(finding.original.seed, 25u);
  EXPECT_FALSE(finding.report.ok());
  EXPECT_GT(finding.shrink_runs, 0);
  EXPECT_LE(finding.minimized.plan.episodes, finding.original.plan.episodes);
  EXPECT_FALSE(log.str().empty());
}

TEST(FuzzConfigShaping, ConvergeShapeExtendsRunAndGatesOracle) {
  FuzzCase shaped;
  shaped.model = SystemModel::kFrodoThreeParty;
  shaped.plan.converge_shape = true;
  FuzzConfig config;
  const experiment::ExperimentConfig experiment_config =
      check::fuzz_experiment_config(shaped, config);
  EXPECT_EQ(experiment_config.failure_horizon,
            experiment_config.duration / 2);
  // Convergence is opt-in: the models do not guarantee it.
  EXPECT_FALSE(check::fuzz_oracle_config(shaped, config).require_convergence);
  config.require_convergence = true;
  EXPECT_TRUE(check::fuzz_oracle_config(shaped, config).require_convergence);

  // UPnP's polling model offers no convergence bound: never required.
  shaped.model = SystemModel::kUpnp;
  EXPECT_FALSE(check::fuzz_oracle_config(shaped, config).require_convergence);
}

TEST(FuzzSweep, MdnsConvergesUnderChurnWithConvergenceRequired) {
  // The decentralized model's strongest claim: with require_convergence
  // on - the strict mode that hunts delivery-abandonment cases in the
  // registry-based protocols - mDNS produces no findings, because its
  // periodic full-record announcements repair any missed change burst
  // once connectivity returns. The whole observability stack (oracle,
  // shrinker, plan generator) runs unchanged against the new protocol.
  FuzzConfig config;
  config.models = {SystemModel::kMdns};
  config.seed_begin = 1;
  config.seed_end = 25;
  config.require_convergence = true;
  const FuzzResult result = check::run_fuzz(config);
  EXPECT_TRUE(result.ok());
  EXPECT_EQ(result.cases_run, 24u);
  EXPECT_TRUE(result.findings.empty());
}

TEST(FuzzRegression, RetransmissionAbandonmentStrandsAFrodoUser) {
  // FRODO-3party seed 238, converge-shaped: the registry's push to one
  // user exhausts its retransmission budget while the user's receiver
  // is down, nothing re-pushes after recovery, and the user holds
  // version 1 forever despite a quiet second half. This is a genuine
  // property of the reproduced model, surfaced by the fuzzer; it is
  // why require_convergence is opt-in.
  FuzzCase stranded;
  stranded.model = SystemModel::kFrodoThreeParty;
  stranded.seed = 238;
  stranded.plan.lambda = 0.15;
  stranded.plan.episodes = 1;
  stranded.plan.placement = net::FailurePlacement::kFitInside;
  stranded.plan.message_loss_rate = 0.0;
  stranded.plan.converge_shape = true;

  FuzzConfig config;
  const check::OracleReport lenient =
      check::run_fuzz_case(stranded, config);
  EXPECT_TRUE(lenient.ok()) << describe_all(lenient);

  config.require_convergence = true;
  const check::OracleReport strict = check::run_fuzz_case(stranded, config);
  ASSERT_FALSE(strict.ok());
  EXPECT_EQ(strict.violations[0].invariant, check::Invariant::kConvergence);
}

}  // namespace

#include "sdcm/check/oracle.hpp"

#include <gtest/gtest.h>

#include <array>
#include <string>
#include <vector>

#include "sdcm/experiment/scenario.hpp"
#include "sdcm/net/network.hpp"
#include "sdcm/sim/simulator.hpp"

namespace {

using namespace sdcm;
using check::ConsistencyOracle;
using check::Invariant;
using check::OracleConfig;
using check::OracleReport;

std::string describe_all(const OracleReport& report) {
  std::string out;
  for (const check::Violation& violation : report.violations) {
    out += violation.describe() + "\n";
  }
  return out;
}

std::size_t count_of(const OracleReport& report, Invariant invariant) {
  std::size_t n = 0;
  for (const check::Violation& violation : report.violations) {
    if (violation.invariant == invariant) ++n;
  }
  return n;
}

/// A simulator + network + observer the oracle can attach to; the
/// synthetic tests then drive the observer hooks / trace stream / wire
/// probe directly instead of running a protocol.
struct OracleTest : testing::Test {
  sim::Simulator simulator{1};
  net::Network network{simulator};
  discovery::ConsistencyObserver observer;

  OracleReport finish(ConsistencyOracle& oracle) { return oracle.finish(); }
};

TEST_F(OracleTest, CleanRunReportsOk) {
  ConsistencyOracle oracle;
  oracle.begin_run(observer, network, sim::seconds(5400));
  observer.service_changed(2, sim::seconds(1000));
  observer.user_version(11, 1, sim::seconds(10));
  observer.user_version(11, 2, sim::seconds(1001));
  const OracleReport report = oracle.finish();
  EXPECT_TRUE(report.ok()) << describe_all(report);
  EXPECT_EQ(report.version_observations, 2u);
}

TEST_F(OracleTest, VersionRegressIsMonotonicityViolation) {
  ConsistencyOracle oracle;
  oracle.begin_run(observer, network, sim::seconds(5400));
  observer.service_changed(2, sim::seconds(500));
  observer.user_version(11, 2, sim::seconds(600));
  observer.user_version(11, 1, sim::seconds(700));  // regress
  const OracleReport report = oracle.finish();
  ASSERT_EQ(report.violation_total, 1u) << describe_all(report);
  EXPECT_EQ(report.violations[0].invariant, Invariant::kMonotonicity);
  EXPECT_EQ(report.violations[0].node, 11u);
  EXPECT_EQ(report.violations[0].at, sim::seconds(700));
}

TEST_F(OracleTest, ManagerPurgeResetsTheMonotonicityFloor) {
  ConsistencyOracle oracle;
  oracle.begin_run(observer, network, sim::seconds(5400));
  observer.service_changed(2, sim::seconds(500));
  observer.user_version(11, 2, sim::seconds(600));
  // The user purges its manager (lease expiry during an outage), then
  // rediscovers and adopts a stale description from a backup: designed
  // behaviour, not a regress.
  oracle.on_record(sim::TraceRecord{sim::seconds(700), 11,
                                    sim::TraceCategory::kDiscovery, 1,
                                    sim::kNoSpan, "frodo.manager.purged",
                                    "lease expired"});
  observer.user_version(11, 1, sim::seconds(800));
  const OracleReport report = oracle.finish();
  EXPECT_TRUE(report.ok()) << describe_all(report);
}

TEST_F(OracleTest, VersionBeforeChangeIsCausalityViolation) {
  ConsistencyOracle oracle;
  oracle.begin_run(observer, network, sim::seconds(5400));
  observer.user_version(11, 2, sim::seconds(50));  // no change happened
  const OracleReport report = oracle.finish();
  ASSERT_EQ(report.violation_total, 1u) << describe_all(report);
  EXPECT_EQ(report.violations[0].invariant, Invariant::kCausality);
}

TEST_F(OracleTest, NotificationWithoutLeaseIsHygieneViolation) {
  ConsistencyOracle oracle;
  oracle.begin_run(observer, network, sim::seconds(5400));
  observer.service_changed(2, sim::seconds(100));
  observer.notification_sent(1, 11, 2, sim::seconds(200));  // never granted
  const OracleReport report = oracle.finish();
  ASSERT_EQ(report.violation_total, 1u) << describe_all(report);
  EXPECT_EQ(report.violations[0].invariant, Invariant::kLeaseHygiene);
  EXPECT_EQ(report.violations[0].node, 1u);
}

TEST_F(OracleTest, NotificationAfterExpiryIsHygieneViolation) {
  ConsistencyOracle oracle;
  oracle.begin_run(observer, network, sim::seconds(5400));
  observer.lease_granted(1, 11, /*expires_at=*/sim::seconds(300),
                         /*at=*/sim::seconds(0));
  observer.notification_sent(1, 11, 2, sim::seconds(400));
  observer.lease_dropped(1, 11, sim::seconds(300));
  const OracleReport report = oracle.finish();
  ASSERT_EQ(report.violation_total, 1u) << describe_all(report);
  EXPECT_EQ(report.violations[0].invariant, Invariant::kLeaseHygiene);
}

TEST_F(OracleTest, RenewalExtendsTheLease) {
  ConsistencyOracle oracle;
  oracle.begin_run(observer, network, sim::seconds(5400));
  observer.lease_granted(1, 11, sim::seconds(300), sim::seconds(0));
  observer.lease_granted(1, 11, sim::seconds(6000), sim::seconds(250));
  observer.notification_sent(1, 11, 2, sim::seconds(400));
  const OracleReport report = oracle.finish();
  EXPECT_TRUE(report.ok()) << describe_all(report);
  EXPECT_EQ(report.leases_tracked, 2u);
  EXPECT_EQ(report.notifications_checked, 1u);
}

TEST_F(OracleTest, ExpiredLeaseNeverDroppedIsFlaggedAtFinish) {
  ConsistencyOracle oracle;
  oracle.begin_run(observer, network, sim::seconds(5400));
  observer.lease_granted(1, 11, sim::seconds(300), sim::seconds(0));
  const OracleReport report = oracle.finish();
  ASSERT_EQ(report.violation_total, 1u) << describe_all(report);
  EXPECT_EQ(report.violations[0].invariant, Invariant::kLeaseHygiene);
  EXPECT_EQ(report.violations[0].at, sim::seconds(5400));
}

TEST_F(OracleTest, LatePurgeIsHygieneViolation) {
  ConsistencyOracle oracle;
  oracle.begin_run(observer, network, sim::seconds(5400));
  observer.lease_granted(1, 11, sim::seconds(300), sim::seconds(0));
  observer.lease_dropped(1, 11, sim::seconds(400));  // 100 s late
  const OracleReport report = oracle.finish();
  ASSERT_EQ(report.violation_total, 1u) << describe_all(report);
  EXPECT_EQ(report.violations[0].invariant, Invariant::kLeaseHygiene);
}

TEST_F(OracleTest, DropWithoutGrantIsHygieneViolation) {
  ConsistencyOracle oracle;
  oracle.begin_run(observer, network, sim::seconds(5400));
  observer.lease_dropped(1, 11, sim::seconds(100));
  const OracleReport report = oracle.finish();
  ASSERT_EQ(report.violation_total, 1u) << describe_all(report);
  EXPECT_EQ(report.violations[0].invariant, Invariant::kLeaseHygiene);
}

TEST_F(OracleTest, TraceUpdateRecordBeforeChangeIsCausalityViolation) {
  ConsistencyOracle oracle;
  oracle.begin_run(observer, network, sim::seconds(5400));
  oracle.on_record(sim::TraceRecord{sim::seconds(10), 10,
                                    sim::TraceCategory::kUpdate, 1,
                                    sim::kNoSpan, "jini.notify.tx",
                                    "to=11 version=2"});
  const OracleReport report = oracle.finish();
  ASSERT_EQ(report.violation_total, 1u) << describe_all(report);
  EXPECT_EQ(report.violations[0].invariant, Invariant::kCausality);
  EXPECT_EQ(report.violations[0].span, 1u);
}

TEST_F(OracleTest, VersionTokenParsingRespectsBoundaries) {
  ConsistencyOracle oracle;
  oracle.begin_run(observer, network, sim::seconds(5400));
  // "from_version=3" must NOT parse as "version=3".
  oracle.on_record(sim::TraceRecord{sim::seconds(10), 10,
                                    sim::TraceCategory::kUpdate, 1,
                                    sim::kNoSpan, "x.notify.tx",
                                    "to=11 from_version=3"});
  const OracleReport report = oracle.finish();
  EXPECT_TRUE(report.ok()) << describe_all(report);
}

TEST_F(OracleTest, NotificationDescendingFromChangeRootPasses) {
  ConsistencyOracle oracle;
  oracle.begin_run(observer, network, sim::seconds(5400));
  oracle.on_record(sim::TraceRecord{sim::seconds(20), 10,
                                    sim::TraceCategory::kUpdate, 1,
                                    sim::kNoSpan, "upnp.service_changed",
                                    "version=2"});
  oracle.on_record(sim::TraceRecord{sim::seconds(21), 10,
                                    sim::TraceCategory::kUpdate, 2, 1,
                                    "upnp.notify.tx", "to=11 version=2"});
  const OracleReport report = oracle.finish();
  EXPECT_TRUE(report.ok()) << describe_all(report);
  EXPECT_EQ(report.records_checked, 2u);
}

TEST_F(OracleTest, OrphanNotificationIsCausalityViolation) {
  ConsistencyOracle oracle;
  oracle.begin_run(observer, network, sim::seconds(5400));
  oracle.on_record(sim::TraceRecord{sim::seconds(20), 10,
                                    sim::TraceCategory::kUpdate, 1,
                                    sim::kNoSpan, "upnp.service_changed",
                                    "version=2"});
  // A GENA notification rooted in a timer, not the change: bug.
  oracle.on_record(sim::TraceRecord{sim::seconds(30), 10,
                                    sim::TraceCategory::kUpdate, 2,
                                    sim::kNoSpan, "upnp.notify.tx", "to=11"});
  const OracleReport report = oracle.finish();
  ASSERT_EQ(report.violation_total, 1u) << describe_all(report);
  EXPECT_EQ(report.violations[0].invariant, Invariant::kCausality);
  EXPECT_EQ(report.violations[0].span, 2u);
}

TEST_F(OracleTest, MalformedSpanStructureIsCausalityViolation) {
  ConsistencyOracle oracle;
  oracle.begin_run(observer, network, sim::seconds(5400));
  // Parent id >= child id (and never recorded): structurally impossible
  // in a real log.
  oracle.on_record(sim::TraceRecord{sim::seconds(5), 10,
                                    sim::TraceCategory::kInfo, 3, 7, "x",
                                    ""});
  const OracleReport report = oracle.finish();
  EXPECT_GE(report.violation_total, 1u);
  EXPECT_GE(count_of(report, Invariant::kCausality), 1u)
      << describe_all(report);
}

TEST_F(OracleTest, RecordPredatingItsParentIsCausalityViolation) {
  ConsistencyOracle oracle;
  oracle.begin_run(observer, network, sim::seconds(5400));
  oracle.on_record(sim::TraceRecord{sim::seconds(100), 10,
                                    sim::TraceCategory::kInfo, 1,
                                    sim::kNoSpan, "root", ""});
  oracle.on_record(sim::TraceRecord{sim::seconds(50), 10,
                                    sim::TraceCategory::kInfo, 2, 1, "child",
                                    ""});
  const OracleReport report = oracle.finish();
  ASSERT_EQ(report.violation_total, 1u) << describe_all(report);
  EXPECT_EQ(report.violations[0].invariant, Invariant::kCausality);
}

TEST_F(OracleTest, InterfaceUpInsidePlannedOutageIsViolation) {
  ConsistencyOracle oracle;
  oracle.begin_run(observer, network, sim::seconds(5400));
  // Two overlapping episodes on node 1; merged cover [100 s, 250 s].
  const std::array<net::FailureEpisode, 2> plan{
      net::FailureEpisode{1, net::FailureMode::kBoth, sim::seconds(100),
                          sim::seconds(100)},
      net::FailureEpisode{1, net::FailureMode::kBoth, sim::seconds(150),
                          sim::seconds(100)}};
  oracle.arm(plan, std::vector<sim::NodeId>{});

  net::Message msg;
  msg.src = 1;
  msg.dst = 2;
  // The legacy-boolean bug: first episode's up-flip at 200 s re-enables
  // the interface while the second episode still covers it.
  oracle.on_send(msg, /*tx_up=*/true, sim::seconds(210));
  const OracleReport report = oracle.finish();
  ASSERT_EQ(report.violation_total, 1u) << describe_all(report);
  EXPECT_EQ(report.violations[0].invariant, Invariant::kInterface);
  EXPECT_EQ(report.violations[0].node, 1u);
}

TEST_F(OracleTest, InterfaceBoundaryAndOutsideBehaviour) {
  ConsistencyOracle oracle;
  oracle.begin_run(observer, network, sim::seconds(5400));
  const std::array<net::FailureEpisode, 1> plan{net::FailureEpisode{
      1, net::FailureMode::kBoth, sim::seconds(100), sim::seconds(100)}};
  oracle.arm(plan, std::vector<sim::NodeId>{});

  net::Message msg;
  msg.src = 1;
  msg.dst = 1;
  // Down inside the outage: fine. Up at the boundary instants: fine
  // (event ordering at the same timestamp is ambiguous).
  oracle.on_send(msg, /*tx_up=*/false, sim::seconds(150));
  oracle.on_send(msg, /*tx_up=*/true, sim::seconds(100));
  oracle.on_send(msg, /*tx_up=*/true, sim::seconds(200));
  // Up outside: fine.
  oracle.on_arrival(msg, /*rx_up=*/true, /*lost=*/false, sim::seconds(300));
  EXPECT_TRUE(oracle.finish().ok());

  // Down outside every planned outage: violation.
  oracle.begin_run(observer, network, sim::seconds(5400));
  oracle.arm(plan, std::vector<sim::NodeId>{});
  oracle.on_arrival(msg, /*rx_up=*/false, /*lost=*/false, sim::seconds(500));
  const OracleReport report = oracle.finish();
  ASSERT_EQ(report.violation_total, 1u) << describe_all(report);
  EXPECT_EQ(report.violations[0].invariant, Invariant::kInterface);
}

TEST_F(OracleTest, ConvergenceViolationWhenUserStranded) {
  OracleConfig config;
  config.require_convergence = true;
  config.convergence_grace = sim::seconds(10);
  ConsistencyOracle oracle(config);
  oracle.begin_run(observer, network, sim::seconds(5400));
  oracle.arm(std::vector<net::FailureEpisode>{},
             std::vector<sim::NodeId>{11, 12});
  observer.service_changed(2, sim::seconds(1000));
  observer.user_version(11, 2, sim::seconds(1100));
  // User 12 never reaches version 2.
  const OracleReport report = oracle.finish();
  ASSERT_EQ(report.violation_total, 1u) << describe_all(report);
  EXPECT_EQ(report.violations[0].invariant, Invariant::kConvergence);
  EXPECT_EQ(report.violations[0].node, 12u);
}

TEST_F(OracleTest, ConvergenceNotCheckedWithoutQuietTail) {
  OracleConfig config;
  config.require_convergence = true;
  config.convergence_grace = sim::seconds(5400);
  ConsistencyOracle oracle(config);
  oracle.begin_run(observer, network, sim::seconds(5400));
  // Last episode ends at 200 s: 200 s + 5400 s grace > deadline, so the
  // check must not apply even though user 11 is stranded.
  const std::array<net::FailureEpisode, 1> plan{net::FailureEpisode{
      1, net::FailureMode::kBoth, sim::seconds(100), sim::seconds(100)}};
  oracle.arm(plan, std::vector<sim::NodeId>{11});
  observer.service_changed(2, sim::seconds(1000));
  EXPECT_TRUE(oracle.finish().ok());
}

TEST_F(OracleTest, ViolationStorageIsCappedButCounted) {
  OracleConfig config;
  config.max_stored_violations = 3;
  ConsistencyOracle oracle(config);
  oracle.begin_run(observer, network, sim::seconds(5400));
  for (int i = 0; i < 10; ++i) {
    observer.lease_dropped(1, 11, sim::seconds(i));
  }
  const OracleReport report = oracle.finish();
  EXPECT_EQ(report.violation_total, 10u);
  EXPECT_EQ(report.violations.size(), 3u);
}

// --- integration with the experiment harness ---

TEST(OracleIntegration, TraceFingerprintIdenticalWithAndWithoutOracle) {
  experiment::ExperimentConfig config;
  config.model = experiment::SystemModel::kJiniOneRegistry;
  config.lambda = 0.6;
  config.seed = 7;
  config.record_trace = true;
  const metrics::RunRecord baseline = experiment::run_experiment(config);
  ASSERT_NE(baseline.trace_fingerprint, 0u);

  ConsistencyOracle oracle;
  config.oracle = &oracle;
  config.record_trace = false;  // oracle alone forces recording on
  const metrics::RunRecord checked = experiment::run_experiment(config);
  EXPECT_EQ(baseline.trace_fingerprint, checked.trace_fingerprint);
  const OracleReport report = oracle.finish();
  EXPECT_TRUE(report.ok()) << describe_all(report);
  EXPECT_GT(report.records_checked, 0u);
  EXPECT_GT(report.wire_sends, 0u);
}

TEST(OracleIntegration, RealRunsAcrossModelsProduceNoViolations) {
  for (const experiment::SystemModel model : experiment::kAllModels) {
    for (const double lambda : {0.3, 0.9}) {
      for (const int episodes : {1, 3}) {
        for (const double loss : {0.0, 0.2}) {
          experiment::ExperimentConfig config;
          config.model = model;
          config.lambda = lambda;
          config.failure_episodes = episodes;
          config.message_loss_rate = loss;
          config.seed = 11;
          ConsistencyOracle oracle;
          config.oracle = &oracle;
          experiment::run_experiment(config);
          const OracleReport report = oracle.finish();
          EXPECT_TRUE(report.ok())
              << experiment::to_string(model) << " lambda=" << lambda
              << " episodes=" << episodes << " loss=" << loss << "\n"
              << describe_all(report);
          EXPECT_GT(report.records_checked, 0u);
        }
      }
    }
  }
}

TEST(OracleIntegration, LeaseAndVersionCountersSeeRealTraffic) {
  experiment::ExperimentConfig config;
  config.model = experiment::SystemModel::kUpnp;
  config.lambda = 0.0;
  config.seed = 3;
  ConsistencyOracle oracle;
  config.oracle = &oracle;
  experiment::run_experiment(config);
  const OracleReport report = oracle.finish();
  EXPECT_TRUE(report.ok()) << describe_all(report);
  EXPECT_GT(report.leases_tracked, 0u);
  EXPECT_GT(report.version_observations, 0u);
  EXPECT_GT(report.notifications_checked, 0u);
}

}  // namespace

#include "sdcm/experiment/report.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>

namespace sdcm::experiment {
namespace {

std::vector<SweepPoint> sample_points() {
  std::vector<SweepPoint> points;
  for (const auto model :
       {SystemModel::kUpnp, SystemModel::kFrodoTwoParty}) {
    for (const double lambda : {0.0, 0.5}) {
      SweepPoint p;
      p.model = model;
      p.lambda = lambda;
      p.runs = 3;
      p.metrics.responsiveness = lambda == 0.0 ? 0.9 : 0.5;
      p.metrics.effectiveness = lambda == 0.0 ? 1.0 : 0.7;
      p.metrics.efficiency = 0.6;
      p.metrics.degradation = lambda == 0.0 ? 1.0 : 0.4;
      points.push_back(p);
    }
  }
  return points;
}

TEST(Report, SeriesTableHasHeaderAndRowPerLambda) {
  std::ostringstream oss;
  const auto points = sample_points();
  write_series_table(oss, points, Metric::kEffectiveness);
  const std::string out = oss.str();
  EXPECT_NE(out.find("UPnP"), std::string::npos);
  EXPECT_NE(out.find("FRODO-2party"), std::string::npos);
  // Header + 2 lambda rows.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 3);
  EXPECT_NE(out.find("0.700"), std::string::npos);
}

TEST(Report, CsvRoundTripsValues) {
  std::ostringstream oss;
  write_csv(oss, sample_points());
  const std::string out = oss.str();
  EXPECT_NE(out.find("model,lambda,"), std::string::npos);
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 5);  // header + 4
  EXPECT_NE(out.find("UPnP,0.000000,0.900000"), std::string::npos);
}

TEST(Report, AveragesTableMatchesTable5Shape) {
  std::ostringstream oss;
  write_averages_table(oss, sample_points());
  const std::string out = oss.str();
  EXPECT_NE(out.find("Update Responsiveness R"), std::string::npos);
  EXPECT_NE(out.find("Update Effectiveness F"), std::string::npos);
  EXPECT_NE(out.find("Efficiency Degradation G"), std::string::npos);
  // Mean of 0.9 / 0.5 = 0.7 must appear for responsiveness.
  EXPECT_NE(out.find("0.700"), std::string::npos);
}

TEST(Report, MetricAccessors) {
  metrics::MetricsSummary s;
  s.responsiveness = 1;
  s.effectiveness = 2;
  s.efficiency = 3;
  s.degradation = 4;
  EXPECT_DOUBLE_EQ(value_of(s, Metric::kResponsiveness), 1);
  EXPECT_DOUBLE_EQ(value_of(s, Metric::kEffectiveness), 2);
  EXPECT_DOUBLE_EQ(value_of(s, Metric::kEfficiency), 3);
  EXPECT_DOUBLE_EQ(value_of(s, Metric::kDegradation), 4);
  EXPECT_EQ(to_string(Metric::kDegradation), "Efficiency Degradation G");
}

TEST(Report, CampaignSummaryJsonHasTheTelemetry) {
  CampaignSummary s;
  s.runs_completed = 120;
  s.points = 4;
  s.wall_ns = 2'000'000'000;  // 2 s
  s.run_wall_ns_total = 6'000'000'000;
  s.sim_seconds_total = 648000.0;
  s.kernel.events_fired = 1'000'000;
  std::ostringstream oss;
  write_campaign_summary_json(oss, s);
  const std::string out = oss.str();
  EXPECT_NE(out.find("\"runs_completed\":120"), std::string::npos);
  EXPECT_NE(out.find("\"points\":4"), std::string::npos);
  EXPECT_NE(out.find("\"events_fired\":1000000"), std::string::npos);
  EXPECT_NE(out.find("\"runs_per_second\""), std::string::npos);
  EXPECT_NE(out.find("\"events_per_second\""), std::string::npos);
  EXPECT_NE(out.find("\"sim_speedup\""), std::string::npos);
  // 1e6 events over 2 s wall.
  EXPECT_DOUBLE_EQ(s.runs_per_second(), 60.0);
  EXPECT_DOUBLE_EQ(s.events_per_second(), 500000.0);
  EXPECT_DOUBLE_EQ(s.sim_speedup(), 324000.0);
}

}  // namespace
}  // namespace sdcm::experiment

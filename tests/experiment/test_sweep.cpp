#include "sdcm/experiment/sweep.hpp"

#include <gtest/gtest.h>

#include <iterator>

#include <set>
#include <sstream>
#include <stdexcept>

#include "sdcm/experiment/sink.hpp"

namespace sdcm::experiment {
namespace {

TEST(Sweep, PaperLambdaGridIs19Points) {
  const auto grid = SweepConfig::paper_lambda_grid();
  ASSERT_EQ(grid.size(), 19u);
  EXPECT_DOUBLE_EQ(grid.front(), 0.0);
  EXPECT_DOUBLE_EQ(grid.back(), 0.9);
  EXPECT_DOUBLE_EQ(grid[1], 0.05);
}

TEST(Sweep, RunSeedsAreDeterministicAndDistinct) {
  const auto a = run_seed(1, SystemModel::kUpnp, 0, 0);
  EXPECT_EQ(a, run_seed(1, SystemModel::kUpnp, 0, 0));
  EXPECT_NE(a, run_seed(1, SystemModel::kUpnp, 0, 1));
  EXPECT_NE(a, run_seed(1, SystemModel::kUpnp, 1, 0));
  EXPECT_NE(a, run_seed(1, SystemModel::kJiniOneRegistry, 0, 0));
  EXPECT_NE(a, run_seed(2, SystemModel::kUpnp, 0, 0));
}

TEST(Sweep, SmallSweepProducesOrderedPerfectZeroFailurePoints) {
  SweepConfig config;
  config.models = {SystemModel::kFrodoTwoParty, SystemModel::kUpnp};
  config.lambdas = {0.0};
  config.runs = 3;
  config.threads = 2;
  config.keep_records = true;
  const auto result = run_sweep(config);
  const auto& points = result.points;
  ASSERT_EQ(points.size(), 2u);
  EXPECT_EQ(points[0].model, SystemModel::kFrodoTwoParty);
  EXPECT_EQ(points[1].model, SystemModel::kUpnp);
  for (const auto& p : points) {
    EXPECT_EQ(p.lambda_index, 0u);
    EXPECT_EQ(p.runs, 3);
    EXPECT_EQ(p.records.size(), 3u);
    EXPECT_DOUBLE_EQ(p.metrics.effectiveness, 1.0);
    EXPECT_DOUBLE_EQ(p.metrics.degradation, 1.0);
    EXPECT_GT(p.metrics.responsiveness, 0.4);
  }
  // E(0): FRODO owns m = 7 -> 1.0; UPnP spends 15 -> 7/15.
  EXPECT_DOUBLE_EQ(points[0].metrics.efficiency, 1.0);
  EXPECT_NEAR(points[1].metrics.efficiency, 7.0 / 15.0, 1e-9);
  // Campaign telemetry accumulated while streaming.
  EXPECT_EQ(result.summary.runs_completed, 6u);
  EXPECT_EQ(result.summary.points, 2u);
  EXPECT_GT(result.summary.wall_ns, 0u);
  EXPECT_GT(result.summary.kernel.events_fired, 0u);
  EXPECT_GT(result.summary.sim_seconds_total, 0.0);
}

TEST(Sweep, RecordsDroppedUnlessKept) {
  SweepConfig config;
  config.models = {SystemModel::kUpnp};
  config.lambdas = {0.0};
  config.runs = 2;
  const auto result = run_sweep(config);
  ASSERT_EQ(result.size(), 1u);
  EXPECT_TRUE(result.points[0].records.empty());
  EXPECT_EQ(result.points[0].runs, 2);
}

TEST(Sweep, ResultsIndependentOfThreadCount) {
  SweepConfig config;
  config.models = {SystemModel::kJiniOneRegistry};
  config.lambdas = {0.3};
  config.runs = 4;
  config.keep_records = true;

  config.threads = 1;
  const auto serial = run_sweep(config);
  config.threads = 4;
  const auto parallel = run_sweep(config);

  ASSERT_EQ(serial.size(), 1u);
  ASSERT_EQ(parallel.size(), 1u);
  // Bit-identical, not merely close: the streaming reduction replays
  // order-sensitive sums in run-index order regardless of completion
  // order.
  EXPECT_EQ(serial.points[0].metrics.responsiveness,
            parallel.points[0].metrics.responsiveness);
  EXPECT_EQ(serial.points[0].metrics.effectiveness,
            parallel.points[0].metrics.effectiveness);
  EXPECT_EQ(serial.points[0].metrics.efficiency,
            parallel.points[0].metrics.efficiency);
  EXPECT_EQ(serial.points[0].metrics.degradation,
            parallel.points[0].metrics.degradation);
  for (std::size_t r = 0; r < serial.points[0].records.size(); ++r) {
    EXPECT_EQ(serial.points[0].records[r].update_messages,
              parallel.points[0].records[r].update_messages);
  }
}

TEST(Sweep, StreamingSummariesMatchBatchBitForBit) {
  // The acceptance bar of the streaming engine: for every point the
  // online aggregation must reproduce the keep-everything batch
  // summarize exactly, including the order-sensitive FP sums.
  SweepConfig config;
  config.models = {SystemModel::kUpnp, SystemModel::kFrodoThreeParty};
  config.lambdas = {0.0, 0.45, 0.9};
  config.runs = 5;
  config.threads = 4;
  config.keep_records = true;
  const auto result = run_sweep(config);
  ASSERT_EQ(result.size(), 6u);
  for (const auto& p : result.points) {
    const auto batch = metrics::update_metrics::summarize(
        p.records, metrics::update_metrics::kPaperGlobalMinimumMessages,
        minimum_update_messages(p.model, config.topology.users));
    EXPECT_EQ(p.metrics.responsiveness, batch.responsiveness);
    EXPECT_EQ(p.metrics.effectiveness, batch.effectiveness);
    EXPECT_EQ(p.metrics.efficiency, batch.efficiency);
    EXPECT_EQ(p.metrics.degradation, batch.degradation);
  }
}

TEST(Sweep, StreamingMatchesBatchWithMultiEpisodePlansAndLoss) {
  // Same bit-for-bit bar under the harsher fault shapes the fuzzer
  // exercises: three truncated episodes per node plus message loss.
  SweepConfig config;
  config.models = {SystemModel::kJiniTwoRegistries, SystemModel::kUpnp};
  config.lambdas = {0.3, 0.9};
  config.runs = 4;
  config.threads = 4;
  config.keep_records = true;
  config.ablation.episodes = 3;
  config.ablation.placement = net::FailurePlacement::kTruncated;
  config.ablation.message_loss_rate = 0.1;
  const auto result = run_sweep(config);
  ASSERT_EQ(result.size(), 4u);
  for (const auto& p : result.points) {
    const auto batch = metrics::update_metrics::summarize(
        p.records, metrics::update_metrics::kPaperGlobalMinimumMessages,
        minimum_update_messages(p.model, config.topology.users));
    EXPECT_EQ(p.metrics.responsiveness, batch.responsiveness);
    EXPECT_EQ(p.metrics.effectiveness, batch.effectiveness);
    EXPECT_EQ(p.metrics.efficiency, batch.efficiency);
    EXPECT_EQ(p.metrics.degradation, batch.degradation);
  }
}

TEST(Sweep, CheckSinkOraclesEveryRunAndStaysClean) {
  SweepConfig config;
  config.models = {SystemModel::kFrodoThreeParty, SystemModel::kUpnp};
  config.lambdas = {0.3, 0.9};
  config.runs = 3;
  config.threads = 4;
  config.ablation.episodes = 2;
  CheckSink checks;
  config.check_sink = &checks;
  const auto result = run_sweep(config);
  EXPECT_EQ(result.summary.runs_completed, 12u);
  EXPECT_EQ(checks.runs_checked(), 12u);
  EXPECT_EQ(checks.violation_total(), 0u);
  EXPECT_TRUE(checks.violations().empty());
  std::ostringstream report;
  checks.write_report(report);
  EXPECT_NE(report.str().find("12 runs checked"), std::string::npos);
}

TEST(Sweep, CustomizeHookAppliesAfterAblationSpec) {
  SweepConfig config;
  config.models = {SystemModel::kFrodoTwoParty};
  config.lambdas = {0.0};
  config.runs = 2;
  config.ablation.frodo_pr3 = false;
  bool spec_seen = false;
  config.customize = [&spec_seen](ExperimentConfig& run) {
    spec_seen = !run.frodo.enable_pr3;  // ablation already applied
    run.frodo.enable_srn2 = false;
  };
  const auto result = run_sweep(config);
  EXPECT_TRUE(spec_seen);
  ASSERT_EQ(result.size(), 1u);
  EXPECT_DOUBLE_EQ(result.points[0].metrics.effectiveness, 1.0);
}

TEST(Sweep, AblationSpecAppliesEveryKnob) {
  AblationSpec spec;
  spec.frodo_pr1 = false;
  spec.frodo_srn2 = false;
  spec.frodo_pr3 = false;
  spec.frodo_pr4 = false;
  spec.frodo_pr5 = false;
  spec.upnp_pr4 = false;
  spec.upnp_pr5 = false;
  spec.placement = net::FailurePlacement::kTruncated;
  spec.episodes = 3;
  spec.message_loss_rate = 0.25;
  ExperimentConfig run;
  spec.apply(run);
  EXPECT_FALSE(run.frodo.enable_pr1);
  EXPECT_FALSE(run.frodo.enable_srn2);
  EXPECT_FALSE(run.frodo.enable_pr3);
  EXPECT_FALSE(run.frodo.enable_pr4);
  EXPECT_FALSE(run.frodo.enable_pr5);
  EXPECT_FALSE(run.upnp.enable_pr4);
  EXPECT_FALSE(run.upnp.enable_pr5);
  EXPECT_EQ(run.failure_placement, net::FailurePlacement::kTruncated);
  EXPECT_EQ(run.failure_episodes, 3);
  EXPECT_DOUBLE_EQ(run.message_loss_rate, 0.25);
}

TEST(Sweep, ValidateCatchesBadConfigs) {
  SweepConfig ok;
  EXPECT_FALSE(ok.validate().has_value());

  SweepConfig no_models = ok;
  no_models.models.clear();
  EXPECT_TRUE(no_models.validate().has_value());

  SweepConfig no_lambdas = ok;
  no_lambdas.lambdas.clear();
  EXPECT_TRUE(no_lambdas.validate().has_value());

  SweepConfig bad_lambda = ok;
  bad_lambda.lambdas = {1.5};
  EXPECT_TRUE(bad_lambda.validate().has_value());

  SweepConfig zero_runs = ok;
  zero_runs.runs = 0;
  EXPECT_TRUE(zero_runs.validate().has_value());

  SweepConfig bad_shard = ok;
  bad_shard.shard.index = 2;
  bad_shard.shard.count = 2;
  EXPECT_TRUE(bad_shard.validate().has_value());

  EXPECT_THROW(run_sweep(zero_runs), std::invalid_argument);
}

TEST(Sweep, ValidateRejectsAblationsNoSelectedModelImplements) {
  // Disabling a FRODO technique in a UPnP-only sweep would silently run
  // the un-ablated protocol; the descriptor's ablation mask catches it.
  SweepConfig upnp_only;
  upnp_only.models = {SystemModel::kUpnp};
  upnp_only.ablation.frodo_pr1 = false;
  const auto error = upnp_only.validate();
  ASSERT_TRUE(error.has_value());
  EXPECT_NE(error->find("frodo-pr1"), std::string::npos);

  SweepConfig frodo_only;
  frodo_only.models = {SystemModel::kFrodoThreeParty};
  frodo_only.ablation.upnp_pr4 = false;
  EXPECT_TRUE(frodo_only.validate().has_value());

  // mDNS implements no ablation toggle at all.
  SweepConfig mdns_only;
  mdns_only.models = {SystemModel::kMdns};
  mdns_only.ablation.frodo_pr5 = false;
  EXPECT_TRUE(mdns_only.validate().has_value());

  // The same disabled toggle is fine when an implementing model is
  // selected alongside.
  SweepConfig mixed;
  mixed.models = {SystemModel::kMdns, SystemModel::kFrodoThreeParty};
  mixed.ablation.frodo_pr5 = false;
  EXPECT_FALSE(mixed.validate().has_value());
}

TEST(Sweep, ShardAssignmentPartitionsEveryJob) {
  // Every (model, lambda_index, run) lands in exactly one shard, and
  // the assignment is a pure function of the key.
  const std::size_t kShards = 3;
  std::size_t counts[3] = {0, 0, 0};
  for (const auto model : kAllModels) {
    for (std::size_t li = 0; li < 19; ++li) {
      for (int run = 0; run < 30; ++run) {
        const auto s = shard_of(model, li, run, kShards);
        ASSERT_LT(s, kShards);
        EXPECT_EQ(s, shard_of(model, li, run, kShards));
        ++counts[s];
      }
    }
  }
  // The hash should spread jobs roughly evenly (no empty shard).
  EXPECT_GT(counts[0], 0u);
  EXPECT_GT(counts[1], 0u);
  EXPECT_GT(counts[2], 0u);
  EXPECT_EQ(counts[0] + counts[1] + counts[2],
            std::size(kAllModels) * 19u * 30u);
}

TEST(Sweep, ShardedUnionReproducesUnshardedViaMerge) {
  SweepConfig config;
  config.models = {SystemModel::kUpnp, SystemModel::kFrodoTwoParty};
  config.lambdas = {0.15, 0.45};
  config.runs = 4;
  config.threads = 2;

  const auto whole = run_sweep(config);

  std::ostringstream log0, log1;
  {
    SweepConfig shard = config;
    shard.shard = {0, 2};
    JsonlSink sink(log0);
    shard.sink = &sink;
    (void)run_sweep(shard);
  }
  {
    SweepConfig shard = config;
    shard.shard = {1, 2};
    JsonlSink sink(log1);
    shard.sink = &sink;
    (void)run_sweep(shard);
  }

  std::istringstream in0(log0.str()), in1(log1.str());
  std::istream* shards[] = {&in0, &in1};
  std::string error;
  const auto merged = merge_jsonl(shards, error);
  ASSERT_TRUE(merged.has_value()) << error;

  ASSERT_EQ(merged->size(), whole.size());
  for (std::size_t i = 0; i < whole.size(); ++i) {
    const auto& a = whole.points[i];
    const auto& b = merged->points[i];
    EXPECT_EQ(a.model, b.model);
    EXPECT_EQ(a.lambda, b.lambda);
    EXPECT_EQ(a.runs, b.runs);
    // Bit-for-bit: the merge replays the identical streaming reduction.
    EXPECT_EQ(a.metrics.responsiveness, b.metrics.responsiveness);
    EXPECT_EQ(a.metrics.effectiveness, b.metrics.effectiveness);
    EXPECT_EQ(a.metrics.efficiency, b.metrics.efficiency);
    EXPECT_EQ(a.metrics.degradation, b.metrics.degradation);
  }
  EXPECT_EQ(merged->summary.runs_completed, whole.summary.runs_completed);
  EXPECT_EQ(merged->summary.kernel.events_fired,
            whole.summary.kernel.events_fired);
}

TEST(Sweep, ScopedRngSweepIsShardInvariantUnderTheOracle) {
  // scoped-rng changes RNG consumption inside a run, never across runs:
  // a sharded campaign must reproduce the unsharded one bit for bit,
  // with the consistency oracle clean on every run in both. This is the
  // acceptance gate for flipping a campaign to --multicast-scope=scoped-rng.
  SweepConfig config;
  config.models = {SystemModel::kFrodoThreeParty, SystemModel::kUpnp};
  config.lambdas = {0.15, 0.45};
  config.runs = 4;
  config.threads = 2;
  config.multicast_scope = net::MulticastScope::kScopedRng;

  CheckSink whole_checks;
  config.check_sink = &whole_checks;
  const auto whole = run_sweep(config);
  EXPECT_EQ(whole_checks.runs_checked(), 16u);
  EXPECT_EQ(whole_checks.violation_total(), 0u);

  std::ostringstream log0, log1;
  CheckSink shard_checks;
  for (int s = 0; s < 2; ++s) {
    SweepConfig shard = config;
    shard.shard = {static_cast<std::size_t>(s), 2};
    JsonlSink sink(s == 0 ? log0 : log1);
    shard.sink = &sink;
    shard.check_sink = &shard_checks;
    (void)run_sweep(shard);
  }
  EXPECT_EQ(shard_checks.runs_checked(), 16u);
  EXPECT_EQ(shard_checks.violation_total(), 0u);

  std::istringstream in0(log0.str()), in1(log1.str());
  std::istream* shards[] = {&in0, &in1};
  std::string error;
  const auto merged = merge_jsonl(shards, error);
  ASSERT_TRUE(merged.has_value()) << error;
  ASSERT_EQ(merged->size(), whole.size());
  for (std::size_t i = 0; i < whole.size(); ++i) {
    const auto& a = whole.points[i];
    const auto& b = merged->points[i];
    EXPECT_EQ(a.metrics.responsiveness, b.metrics.responsiveness);
    EXPECT_EQ(a.metrics.effectiveness, b.metrics.effectiveness);
    EXPECT_EQ(a.metrics.efficiency, b.metrics.efficiency);
    EXPECT_EQ(a.metrics.degradation, b.metrics.degradation);
  }
  // The scope travels in the JSONL header and survives the merge.
  EXPECT_EQ(merged->summary.kernel.udp_deliveries_skipped,
            whole.summary.kernel.udp_deliveries_skipped);
  EXPECT_GT(whole.summary.kernel.udp_deliveries_skipped, 0u);
}

TEST(Sweep, MergeRefusesMixedMulticastScopes) {
  SweepConfig config;
  config.models = {SystemModel::kUpnp};
  config.lambdas = {0.15};
  config.runs = 2;
  std::ostringstream log0, log1;
  {
    JsonlSink sink(log0);
    config.sink = &sink;
    (void)run_sweep(config);
  }
  {
    SweepConfig other = config;
    other.multicast_scope = net::MulticastScope::kScopedRng;
    JsonlSink sink(log1);
    other.sink = &sink;
    (void)run_sweep(other);
  }
  std::istringstream in0(log0.str()), in1(log1.str());
  std::istream* shards[] = {&in0, &in1};
  std::string error;
  const auto merged = merge_jsonl(shards, error);
  EXPECT_FALSE(merged.has_value());
  EXPECT_NE(error.find("multicast_scope"), std::string::npos) << error;
}

TEST(Sweep, ShardedSweepRunsOnlyItsSlice) {
  SweepConfig config;
  config.models = {SystemModel::kUpnp};
  config.lambdas = {0.0, 0.3};
  config.runs = 6;
  config.shard = {0, 2};
  const auto half = run_sweep(config);
  std::uint64_t expected = 0;
  for (std::size_t li = 0; li < config.lambdas.size(); ++li) {
    for (int run = 0; run < config.runs; ++run) {
      if (shard_of(SystemModel::kUpnp, li, run, 2) == 0) ++expected;
    }
  }
  EXPECT_EQ(half.summary.runs_completed, expected);
  EXPECT_LT(expected, 12u);  // a 2-way split leaves work for shard 1
}

}  // namespace
}  // namespace sdcm::experiment

#include "sdcm/experiment/sweep.hpp"

#include <gtest/gtest.h>

namespace sdcm::experiment {
namespace {

TEST(Sweep, PaperLambdaGridIs19Points) {
  const auto grid = SweepConfig::paper_lambda_grid();
  ASSERT_EQ(grid.size(), 19u);
  EXPECT_DOUBLE_EQ(grid.front(), 0.0);
  EXPECT_DOUBLE_EQ(grid.back(), 0.9);
  EXPECT_DOUBLE_EQ(grid[1], 0.05);
}

TEST(Sweep, RunSeedsAreDeterministicAndDistinct) {
  const auto a = run_seed(1, SystemModel::kUpnp, 0, 0);
  EXPECT_EQ(a, run_seed(1, SystemModel::kUpnp, 0, 0));
  EXPECT_NE(a, run_seed(1, SystemModel::kUpnp, 0, 1));
  EXPECT_NE(a, run_seed(1, SystemModel::kUpnp, 1, 0));
  EXPECT_NE(a, run_seed(1, SystemModel::kJiniOneRegistry, 0, 0));
  EXPECT_NE(a, run_seed(2, SystemModel::kUpnp, 0, 0));
}

TEST(Sweep, SmallSweepProducesOrderedPerfectZeroFailurePoints) {
  SweepConfig config;
  config.models = {SystemModel::kFrodoTwoParty, SystemModel::kUpnp};
  config.lambdas = {0.0};
  config.runs = 3;
  config.threads = 2;
  const auto points = run_sweep(config);
  ASSERT_EQ(points.size(), 2u);
  EXPECT_EQ(points[0].model, SystemModel::kFrodoTwoParty);
  EXPECT_EQ(points[1].model, SystemModel::kUpnp);
  for (const auto& p : points) {
    EXPECT_EQ(p.records.size(), 3u);
    EXPECT_DOUBLE_EQ(p.metrics.effectiveness, 1.0);
    EXPECT_DOUBLE_EQ(p.metrics.degradation, 1.0);
    EXPECT_GT(p.metrics.responsiveness, 0.4);
  }
  // E(0): FRODO owns m = 7 -> 1.0; UPnP spends 15 -> 7/15.
  EXPECT_DOUBLE_EQ(points[0].metrics.efficiency, 1.0);
  EXPECT_NEAR(points[1].metrics.efficiency, 7.0 / 15.0, 1e-9);
}

TEST(Sweep, ResultsIndependentOfThreadCount) {
  SweepConfig config;
  config.models = {SystemModel::kJiniOneRegistry};
  config.lambdas = {0.3};
  config.runs = 4;

  config.threads = 1;
  const auto serial = run_sweep(config);
  config.threads = 4;
  const auto parallel = run_sweep(config);

  ASSERT_EQ(serial.size(), 1u);
  ASSERT_EQ(parallel.size(), 1u);
  EXPECT_DOUBLE_EQ(serial[0].metrics.responsiveness,
                   parallel[0].metrics.responsiveness);
  EXPECT_DOUBLE_EQ(serial[0].metrics.effectiveness,
                   parallel[0].metrics.effectiveness);
  for (std::size_t r = 0; r < serial[0].records.size(); ++r) {
    EXPECT_EQ(serial[0].records[r].update_messages,
              parallel[0].records[r].update_messages);
  }
}

TEST(Sweep, CustomizeHookAppliesAblation) {
  SweepConfig config;
  config.models = {SystemModel::kFrodoTwoParty};
  config.lambdas = {0.0};
  config.runs = 2;
  bool hook_ran = false;
  config.customize = [&hook_ran](ExperimentConfig& run) {
    hook_ran = true;
    run.frodo.enable_srn2 = false;
  };
  const auto points = run_sweep(config);
  EXPECT_TRUE(hook_ran);
  ASSERT_EQ(points.size(), 1u);
  EXPECT_DOUBLE_EQ(points[0].metrics.effectiveness, 1.0);
}

}  // namespace
}  // namespace sdcm::experiment

#include "sdcm/experiment/scenario.hpp"

#include <gtest/gtest.h>

namespace sdcm::experiment {
namespace {

using sim::seconds;

std::string model_name(
    const ::testing::TestParamInfo<SystemModel>& param_info) {
  std::string name(to_string(param_info.param));
  for (char& c : name) {
    if (c == '-') c = '_';
  }
  return name;
}

class ZeroFailureRun : public ::testing::TestWithParam<SystemModel> {};

TEST_P(ZeroFailureRun, AllUsersConsistentWithMinimumMessages) {
  // At lambda = 0 every model must deliver the change to all 5 Users and
  // spend exactly its own minimum message count m' (Table 2) - this is
  // what anchors G(0) = 1 in Figure 6.
  ExperimentConfig config;
  config.model = GetParam();
  config.lambda = 0.0;
  config.seed = 7;
  const auto record = run_experiment(config);

  ASSERT_EQ(record.user_reach_times.size(), 5u);
  for (const auto& reach : record.user_reach_times) {
    ASSERT_TRUE(reach.has_value());
    EXPECT_GT(*reach, record.change_time);
    EXPECT_LT(*reach, record.deadline);
  }
  EXPECT_EQ(record.update_messages,
            minimum_update_messages(GetParam(), 5));
}

TEST_P(ZeroFailureRun, DeterministicForSameSeed) {
  ExperimentConfig config;
  config.model = GetParam();
  config.lambda = 0.25;
  config.seed = 99;
  const auto a = run_experiment(config);
  const auto b = run_experiment(config);
  EXPECT_EQ(a.change_time, b.change_time);
  EXPECT_EQ(a.update_messages, b.update_messages);
  ASSERT_EQ(a.user_reach_times.size(), b.user_reach_times.size());
  for (std::size_t i = 0; i < a.user_reach_times.size(); ++i) {
    EXPECT_EQ(a.user_reach_times[i], b.user_reach_times[i]);
  }
}

TEST_P(ZeroFailureRun, DifferentSeedsMoveTheChangeTime) {
  ExperimentConfig config;
  config.model = GetParam();
  config.seed = 1;
  const auto a = run_experiment(config);
  config.seed = 2;
  const auto b = run_experiment(config);
  EXPECT_NE(a.change_time, b.change_time);
}

INSTANTIATE_TEST_SUITE_P(
    AllModels, ZeroFailureRun, ::testing::ValuesIn(kAllModels),
    model_name);

TEST(Scenario, ChangeTimeInPaperWindow) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    ExperimentConfig config;
    config.model = SystemModel::kFrodoThreeParty;
    config.seed = seed;
    const auto record = run_experiment(config);
    EXPECT_GE(record.change_time, seconds(100));
    EXPECT_LE(record.change_time, seconds(2700));
    EXPECT_EQ(record.deadline, seconds(5400));
  }
}

TEST(Scenario, MinimumMessageConstants) {
  EXPECT_EQ(minimum_update_messages(SystemModel::kUpnp, 5), 15u);
  EXPECT_EQ(minimum_update_messages(SystemModel::kJiniOneRegistry, 5), 7u);
  EXPECT_EQ(minimum_update_messages(SystemModel::kJiniTwoRegistries, 5), 14u);
  EXPECT_EQ(minimum_update_messages(SystemModel::kFrodoThreeParty, 5), 7u);
  EXPECT_EQ(minimum_update_messages(SystemModel::kFrodoTwoParty, 5), 7u);
  // mDNS: the change burst is update_repeats multicasts, independent of
  // the user population.
  EXPECT_EQ(minimum_update_messages(SystemModel::kMdns, 5), 2u);
  EXPECT_EQ(minimum_update_messages(SystemModel::kMdns, 50), 2u);
}

TEST(Scenario, ModelNames) {
  EXPECT_EQ(to_string(SystemModel::kUpnp), "UPnP");
  EXPECT_EQ(to_string(SystemModel::kFrodoTwoParty), "FRODO-2party");
}

class ModerateFailureRun : public ::testing::TestWithParam<SystemModel> {};

TEST_P(ModerateFailureRun, RunsToCompletionAcrossSeeds) {
  // Robustness: no model may crash, hang, or corrupt its record under
  // failure injection; reach times (when present) must be causal.
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    ExperimentConfig config;
    config.model = GetParam();
    config.lambda = 0.45;
    config.seed = seed;
    const auto record = run_experiment(config);
    ASSERT_EQ(record.user_reach_times.size(), 5u);
    for (const auto& reach : record.user_reach_times) {
      if (reach.has_value()) {
        EXPECT_GT(*reach, record.change_time);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllModels, ModerateFailureRun, ::testing::ValuesIn(kAllModels),
    model_name);

}  // namespace
}  // namespace sdcm::experiment

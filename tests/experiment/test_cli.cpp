#include "sdcm/experiment/cli.hpp"

#include <gtest/gtest.h>

#include <iterator>

namespace sdcm::experiment::cli {
namespace {

std::optional<Options> parse_args(std::initializer_list<const char*> args) {
  std::vector<const char*> argv = {"sdcm_sweep"};
  argv.insert(argv.end(), args.begin(), args.end());
  std::string error;
  return parse(static_cast<int>(argv.size()), argv.data(), error);
}

TEST(Cli, DefaultsMatchThePaperDesign) {
  const auto options = parse_args({});
  ASSERT_TRUE(options.has_value());
  EXPECT_EQ(options->sweep.models.size(), std::size(kAllModels));
  EXPECT_EQ(options->sweep.lambdas.size(), 19u);
  EXPECT_EQ(options->sweep.runs, 30);
  EXPECT_EQ(options->sweep.topology.users, 5);
  EXPECT_TRUE(options->sweep.ablation.frodo_pr1);
  EXPECT_FALSE(options->sweep.shard.is_sharded());
  EXPECT_TRUE(options->jsonl.empty());
  EXPECT_TRUE(options->merge_inputs.empty());
  EXPECT_TRUE(options->progress);
  EXPECT_EQ(options->output, "-");
}

TEST(Cli, ModelsListParses) {
  const auto options = parse_args({"--models=UPnP,FRODO-2party"});
  ASSERT_TRUE(options.has_value());
  ASSERT_EQ(options->sweep.models.size(), 2u);
  EXPECT_EQ(options->sweep.models[0], SystemModel::kUpnp);
  EXPECT_EQ(options->sweep.models[1], SystemModel::kFrodoTwoParty);
}

TEST(Cli, UnknownModelRejected) {
  std::string error;
  const char* argv[] = {"sdcm_sweep", "--models=Bonjour"};
  EXPECT_FALSE(parse(2, argv, error).has_value());
  EXPECT_NE(error.find("Bonjour"), std::string::npos);
}

TEST(Cli, LambdaRangeParses) {
  const auto options = parse_args({"--lambdas=0.0:0.2:0.1"});
  ASSERT_TRUE(options.has_value());
  ASSERT_EQ(options->sweep.lambdas.size(), 3u);
  EXPECT_DOUBLE_EQ(options->sweep.lambdas[2], 0.2);
}

TEST(Cli, LambdaListParses) {
  const auto options = parse_args({"--lambdas=0.15,0.45"});
  ASSERT_TRUE(options.has_value());
  ASSERT_EQ(options->sweep.lambdas.size(), 2u);
  EXPECT_DOUBLE_EQ(options->sweep.lambdas[0], 0.15);
}

TEST(Cli, BadLambdaRejected) {
  std::string error;
  const char* argv[] = {"sdcm_sweep", "--lambdas=0.5:0.1:0.1"};
  EXPECT_FALSE(parse(2, argv, error).has_value());
  const char* argv2[] = {"sdcm_sweep", "--lambdas=1.5"};
  EXPECT_FALSE(parse(2, argv2, error).has_value());
}

TEST(Cli, NumericFlags) {
  const auto options = parse_args(
      {"--runs=50", "--users=7", "--threads=4", "--seed=99", "--episodes=2"});
  ASSERT_TRUE(options.has_value());
  EXPECT_EQ(options->sweep.runs, 50);
  EXPECT_EQ(options->sweep.topology.users, 7);
  EXPECT_EQ(options->sweep.threads, 4u);
  EXPECT_EQ(options->sweep.master_seed, 99u);
  EXPECT_EQ(options->sweep.ablation.episodes, 2);
}

TEST(Cli, ZeroRunsRejected) {
  std::string error;
  const char* argv[] = {"sdcm_sweep", "--runs=0"};
  EXPECT_FALSE(parse(2, argv, error).has_value());
}

TEST(Cli, AblationTogglesAndPlacement) {
  const auto options = parse_args(
      {"--no-frodo-pr1", "--no-upnp-pr5", "--placement=truncated"});
  ASSERT_TRUE(options.has_value());
  const AblationSpec& spec = options->sweep.ablation;
  EXPECT_FALSE(spec.frodo_pr1);
  EXPECT_FALSE(spec.upnp_pr5);
  EXPECT_TRUE(spec.frodo_srn2);
  EXPECT_EQ(spec.placement, net::FailurePlacement::kTruncated);

  ExperimentConfig run;
  spec.apply(run);
  EXPECT_FALSE(run.frodo.enable_pr1);
  EXPECT_FALSE(run.upnp.enable_pr5);
  EXPECT_TRUE(run.frodo.enable_srn2);
  EXPECT_EQ(run.failure_placement, net::FailurePlacement::kTruncated);
}

TEST(Cli, ShardFlagParses) {
  const auto options = parse_args({"--shard=1/4"});
  ASSERT_TRUE(options.has_value());
  EXPECT_EQ(options->sweep.shard.index, 1u);
  EXPECT_EQ(options->sweep.shard.count, 4u);
  EXPECT_TRUE(options->sweep.shard.is_sharded());
}

TEST(Cli, BadShardRejected) {
  for (const char* bad : {"--shard=4/4", "--shard=-1/2", "--shard=1",
                          "--shard=a/b", "--shard=1/0"}) {
    std::string error;
    const char* argv[] = {"sdcm_sweep", bad};
    EXPECT_FALSE(parse(2, argv, error).has_value()) << bad;
  }
}

TEST(Cli, JsonlMergeSummaryAndLossFlags) {
  const auto options = parse_args({"--jsonl=out.jsonl", "--summary=s.json",
                                   "--merge=a.jsonl,b.jsonl", "--loss=0.2",
                                   "--no-progress"});
  ASSERT_TRUE(options.has_value());
  EXPECT_EQ(options->jsonl, "out.jsonl");
  EXPECT_EQ(options->summary, "s.json");
  ASSERT_EQ(options->merge_inputs.size(), 2u);
  EXPECT_EQ(options->merge_inputs[0], "a.jsonl");
  EXPECT_DOUBLE_EQ(options->sweep.ablation.message_loss_rate, 0.2);
  EXPECT_FALSE(options->progress);
}

TEST(Cli, UnknownFlagRejected) {
  std::string error;
  const char* argv[] = {"sdcm_sweep", "--frobnicate"};
  EXPECT_FALSE(parse(2, argv, error).has_value());
  EXPECT_NE(error.find("frobnicate"), std::string::npos);
}

TEST(Cli, HelpShortCircuits) {
  const auto options = parse_args({"--help"});
  ASSERT_TRUE(options.has_value());
  EXPECT_TRUE(options->help);
  EXPECT_NE(usage().find("--models"), std::string::npos);
}

TEST(Cli, ModelNamesRoundTrip) {
  for (const auto model : kAllModels) {
    EXPECT_EQ(model_from_name(to_string(model)), model);
  }
  EXPECT_FALSE(model_from_name("SLP").has_value());
}

}  // namespace
}  // namespace sdcm::experiment::cli

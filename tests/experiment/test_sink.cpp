#include "sdcm/experiment/sink.hpp"

#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

namespace sdcm::experiment {
namespace {

/// Records every callback; relies on the engine's serialization
/// guarantee (no internal locking on purpose - a data race here would
/// trip TSan and the duplicate detection below).
class RecordingSink final : public RunSink {
 public:
  void on_campaign_begin(const SweepConfig&, std::uint64_t total) override {
    ++begins;
    total_runs = total;
  }
  void on_run(const RunEvent& event) override {
    const auto key = std::make_pair(event.point_index, event.run);
    EXPECT_TRUE(seen.insert(key).second)
        << "duplicate run delivered: point " << event.point_index << " run "
        << event.run;
    EXPECT_NE(event.record, nullptr);
    EXPECT_GT(event.seed, 0u);
  }
  void on_campaign_end(const CampaignSummary& summary) override {
    ++ends;
    runs_at_end = summary.runs_completed;
  }

  int begins = 0;
  int ends = 0;
  std::uint64_t total_runs = 0;
  std::uint64_t runs_at_end = 0;
  std::set<std::pair<std::size_t, int>> seen;
};

SweepConfig tiny_config() {
  SweepConfig config;
  config.models = {SystemModel::kUpnp, SystemModel::kFrodoTwoParty};
  config.lambdas = {0.0, 0.3};
  config.runs = 3;
  config.threads = 4;
  return config;
}

TEST(Sink, EveryRunDeliveredExactlyOnceUnderThreadPool) {
  auto config = tiny_config();
  RecordingSink sink;
  config.sink = &sink;
  const auto result = run_sweep(config);
  EXPECT_EQ(sink.begins, 1);
  EXPECT_EQ(sink.ends, 1);
  EXPECT_EQ(sink.total_runs, 12u);
  EXPECT_EQ(sink.seen.size(), 12u);
  EXPECT_EQ(sink.runs_at_end, 12u);
  EXPECT_EQ(result.summary.runs_completed, 12u);
}

TEST(Sink, MultiSinkFansOutInOrder) {
  auto config = tiny_config();
  config.runs = 1;
  RecordingSink a, b;
  MultiSink multi;
  multi.add(&a);
  multi.add(nullptr);  // ignored
  multi.add(&b);
  config.sink = &multi;
  (void)run_sweep(config);
  EXPECT_EQ(a.seen.size(), 4u);
  EXPECT_EQ(b.seen.size(), 4u);
  EXPECT_EQ(a.begins, 1);
  EXPECT_EQ(b.ends, 1);
}

TEST(Sink, ProgressSinkDrawsAndFinishesWithNewline) {
  auto config = tiny_config();
  config.threads = 1;
  std::ostringstream out;
  // Zero interval: every run redraws, so the output is deterministic
  // in shape (carriage returns, then a final newline).
  ProgressSink progress(out, std::chrono::milliseconds(0));
  config.sink = &progress;
  (void)run_sweep(config);
  const std::string text = out.str();
  EXPECT_NE(text.find("sweep:"), std::string::npos);
  EXPECT_NE(text.find("12/12"), std::string::npos);
  EXPECT_NE(text.find('\r'), std::string::npos);
  EXPECT_FALSE(text.empty());
  EXPECT_EQ(text.back(), '\n');
}

TEST(Sink, JsonlRoundTripsRunsExactly) {
  auto config = tiny_config();
  config.keep_records = true;
  std::ostringstream log;
  JsonlSink sink(log);
  config.sink = &sink;
  const auto result = run_sweep(config);

  std::istringstream in(log.str());
  std::string line;
  std::string error;

  ASSERT_TRUE(std::getline(in, line));
  const auto header = parse_jsonl_header(line, error);
  ASSERT_TRUE(header.has_value()) << error;
  EXPECT_EQ(header->models, config.models);
  EXPECT_EQ(header->lambdas, config.lambdas);
  EXPECT_EQ(header->runs, config.runs);
  EXPECT_EQ(header->users, config.topology.users);
  EXPECT_EQ(header->seed, config.master_seed);
  EXPECT_EQ(header->shard_count, 1u);

  std::size_t parsed = 0;
  while (std::getline(in, line)) {
    const auto run = parse_jsonl_run(line, error);
    ASSERT_TRUE(run.has_value()) << error << " in: " << line;
    ASSERT_LT(run->point_index, result.points.size());
    const auto& point = result.points[run->point_index];
    EXPECT_EQ(run->model, point.model);
    EXPECT_EQ(run->lambda, point.lambda);
    EXPECT_EQ(run->seed, run_seed(config.master_seed, run->model,
                                  run->lambda_index, run->run));
    // The record must round-trip bit-exactly - this is what makes the
    // shard merge reproduce the unsharded metrics.
    const auto& original =
        point.records[static_cast<std::size_t>(run->run)];
    EXPECT_EQ(run->record.change_time, original.change_time);
    EXPECT_EQ(run->record.deadline, original.deadline);
    ASSERT_EQ(run->record.user_reach_times.size(),
              original.user_reach_times.size());
    for (std::size_t u = 0; u < original.user_reach_times.size(); ++u) {
      EXPECT_EQ(run->record.user_reach_times[u],
                original.user_reach_times[u]);
    }
    EXPECT_EQ(run->record.update_messages, original.update_messages);
    EXPECT_EQ(run->record.window_messages, original.window_messages);
    EXPECT_EQ(run->record.trace_fingerprint, original.trace_fingerprint);
    EXPECT_EQ(run->record.kernel.events_fired, original.kernel.events_fired);
    EXPECT_EQ(run->record.kernel.udp_sent, original.kernel.udp_sent);
    ++parsed;
  }
  EXPECT_EQ(parsed, 12u);
}

TEST(Sink, MergeRejectsCorruptCampaigns) {
  auto config = tiny_config();
  config.runs = 2;
  std::ostringstream log;
  JsonlSink sink(log);
  config.sink = &sink;
  (void)run_sweep(config);
  const std::string good = log.str();
  std::string error;

  {  // A complete single log merges fine.
    std::istringstream in(good);
    std::istream* shards[] = {&in};
    EXPECT_TRUE(merge_jsonl(shards, error).has_value()) << error;
  }
  {  // Duplicated run line.
    const auto last = good.rfind('\n', good.size() - 2);
    const std::string dup = good + good.substr(last + 1);
    std::istringstream in(dup);
    std::istream* shards[] = {&in};
    EXPECT_FALSE(merge_jsonl(shards, error).has_value());
    EXPECT_NE(error.find("duplicate"), std::string::npos) << error;
  }
  {  // Truncated log: a run is missing.
    const auto last = good.rfind("\n{");
    std::istringstream in(good.substr(0, last + 1));
    std::istream* shards[] = {&in};
    EXPECT_FALSE(merge_jsonl(shards, error).has_value());
    EXPECT_NE(error.find("missing"), std::string::npos) << error;
  }
  {  // Second shard from a different campaign (other seed).
    auto other = config;
    other.master_seed = 7;
    std::ostringstream other_log;
    JsonlSink other_sink(other_log);
    other.sink = &other_sink;
    (void)run_sweep(other);
    std::istringstream in0(good), in1(other_log.str());
    std::istream* shards[] = {&in0, &in1};
    EXPECT_FALSE(merge_jsonl(shards, error).has_value());
  }
  {  // Garbage input.
    std::istringstream in("not json\n");
    std::istream* shards[] = {&in};
    EXPECT_FALSE(merge_jsonl(shards, error).has_value());
  }
}

}  // namespace
}  // namespace sdcm::experiment

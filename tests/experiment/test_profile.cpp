#include "sdcm/experiment/profile.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "sdcm/experiment/scenario.hpp"
#include "sdcm/experiment/sink.hpp"
#include "sdcm/obs/profiler.hpp"

namespace sdcm::experiment {
namespace {

obs::RunProfile synthetic_run(std::uint64_t scale) {
  obs::RunProfile p;
  p.runs = 1;
  p.loop_ns = 12345 * scale;
  p.loop_events = 100 * scale;
  obs::ProfileEntry net;
  net.name = "frodo.node_announce";
  net.count = 40 * scale;
  net.total_ns = 8000 * scale;
  net.max_ns = 900 + scale;
  net.buckets.push_back({250, 30 * scale});
  net.buckets.push_back({1000, 10 * scale});
  obs::ProfileEntry timer;
  timer.name = "timer.frodo.lease_renew";
  timer.count = 7 * scale;
  timer.total_ns = 3000 * scale;
  timer.max_ns = 700 + scale;
  timer.buckets.push_back({1000, 7 * scale});
  p.events.push_back(net);
  p.events.push_back(timer);
  obs::PhaseEntry phase;
  phase.name = "phase.run_loop";
  phase.count = scale;
  phase.total_ns = 12000 * scale;
  phase.peak_rss_kb = 5000 + scale;
  phase.heap_bytes = 9000 + scale;
  p.phases.push_back(phase);
  return p;
}

TEST(CampaignProfile, JsonlRoundTripIsByteIdentical) {
  CampaignProfile campaign;
  campaign.add("FRODO-3party", synthetic_run(1));
  campaign.add("FRODO-3party", synthetic_run(3));
  campaign.add("UPnP", synthetic_run(2));

  std::ostringstream first;
  write_profile_jsonl(first, campaign);

  CampaignProfile reread;
  std::istringstream in(first.str());
  std::string error;
  ASSERT_TRUE(read_profile_jsonl(in, reread, error)) << error;

  std::ostringstream second;
  write_profile_jsonl(second, reread);
  // The exact-decimal emitters and canonical ordering make the cycle
  // byte-stable - the property --profile-diff and CI artifact diffs
  // lean on.
  EXPECT_EQ(first.str(), second.str());
}

TEST(CampaignProfile, ShardedMergeEqualsUnshardedAggregate) {
  // Four runs across two models, split 2/2 the way a sharded campaign
  // would; the merged shard files must reproduce the unsharded
  // aggregate byte-for-byte.
  CampaignProfile unsharded;
  unsharded.add("FRODO-3party", synthetic_run(1));
  unsharded.add("UPnP", synthetic_run(2));
  unsharded.add("FRODO-3party", synthetic_run(3));
  unsharded.add("UPnP", synthetic_run(4));

  CampaignProfile shard_a;
  shard_a.add("FRODO-3party", synthetic_run(1));
  shard_a.add("UPnP", synthetic_run(4));
  CampaignProfile shard_b;
  shard_b.add("UPnP", synthetic_run(2));
  shard_b.add("FRODO-3party", synthetic_run(3));

  // Merge through the JSONL representation, as the CLI would.
  CampaignProfile merged;
  for (const CampaignProfile* shard : {&shard_a, &shard_b}) {
    std::ostringstream text;
    write_profile_jsonl(text, *shard);
    std::istringstream in(text.str());
    std::string error;
    ASSERT_TRUE(read_profile_jsonl(in, merged, error)) << error;
  }

  std::ostringstream expect;
  write_profile_jsonl(expect, unsharded);
  std::ostringstream got;
  write_profile_jsonl(got, merged);
  EXPECT_EQ(expect.str(), got.str());
}

TEST(CampaignProfile, MergeRejectsMismatchedBucketBounds) {
  CampaignProfile a;
  a.add("UPnP", synthetic_run(1));
  CampaignProfile b;
  b.bounds = {1, 2, 3};
  b.models.push_back({"UPnP", synthetic_run(1)});
  EXPECT_FALSE(a.merge(b));
  // A failed merge leaves the target untouched.
  ASSERT_EQ(a.models.size(), 1u);
  EXPECT_EQ(a.models[0].second.runs, 1u);
}

TEST(CampaignProfile, ReaderRejectsMalformedInput) {
  CampaignProfile profile;
  std::string error;
  {
    std::istringstream in("");
    EXPECT_FALSE(read_profile_jsonl(in, profile, error));
  }
  {
    std::istringstream in("{\"not_a_header\":true}\n");
    EXPECT_FALSE(read_profile_jsonl(in, profile, error));
  }
  {
    // Event line with no preceding model line.
    std::istringstream in(
        "{\"sdcm_profile\":1,\"bounds\":[250]}\n"
        "{\"model\":\"UPnP\",\"event\":\"x\",\"count\":1,\"total_ns\":1,"
        "\"max_ns\":1,\"buckets\":[]}\n");
    EXPECT_FALSE(read_profile_jsonl(in, profile, error));
  }
}

TEST(CampaignProfile, TableRanksEventsByTotalTime) {
  CampaignProfile campaign;
  campaign.add("FRODO-3party", synthetic_run(1));
  std::ostringstream out;
  write_profile_table(out, campaign, 10);
  const std::string text = out.str();
  const auto announce = text.find("frodo.node_announce");
  const auto lease = text.find("timer.frodo.lease_renew");
  ASSERT_NE(announce, std::string::npos);
  ASSERT_NE(lease, std::string::npos);
  EXPECT_LT(announce, lease);  // 8000 ns total outranks 3000 ns
  EXPECT_NE(text.find("phase.run_loop"), std::string::npos);
}

TEST(CampaignProfile, DiffCountsRowsOverThreshold) {
  CampaignProfile a;
  a.add("UPnP", synthetic_run(1));
  CampaignProfile b;
  obs::RunProfile slower = synthetic_run(1);
  slower.events[0].total_ns *= 2;  // +100% ns/event on one site
  b.add("UPnP", slower);
  std::ostringstream out;
  EXPECT_EQ(write_profile_diff(out, a, b, 0.10), 1u);
  EXPECT_EQ(write_profile_diff(out, a, a, 0.10), 0u);
}

TEST(ProfileSink, AggregatesEveryRunWithEnginePhases) {
  SweepConfig config;
  config.models = {SystemModel::kUpnp, SystemModel::kFrodoThreeParty};
  config.lambdas = {0.3};
  config.runs = 2;
  config.threads = 2;
  ProfileSink profiles;
  config.profile_sink = &profiles;
  run_sweep(config);

  EXPECT_EQ(profiles.runs_profiled(), 4u);
  const CampaignProfile& campaign = profiles.campaign();
  ASSERT_EQ(campaign.models.size(), 2u);
  // Bytewise model order.
  EXPECT_EQ(campaign.models[0].first, "FRODO-3party");
  EXPECT_EQ(campaign.models[1].first, "UPnP");
  for (const auto& [name, run] : campaign.models) {
    EXPECT_EQ(run.runs, 2u) << name;
    // Phase timers work in every build; the run-side hierarchy must be
    // present (the engine-side sink phases only appear when a sink or
    // oracle is wired).
    bool saw_run_loop = false;
    for (const auto& phase : run.phases) {
      if (phase.name == "phase.run_loop") {
        saw_run_loop = true;
        EXPECT_EQ(phase.count, 2u);
        EXPECT_GT(phase.total_ns, 0u);
      }
    }
    EXPECT_TRUE(saw_run_loop) << name;
#if SDCM_PROFILE_ENABLED
    EXPECT_GT(run.loop_events, 0u) << name;
    EXPECT_FALSE(run.events.empty()) << name;
    // Acceptance invariant: per-event totals sum to the measured loop
    // wall time (exact by construction; the chained timestamps leave
    // only the loop_end tail unattributed).
    EXPECT_LE(run.attributed_ns(), run.loop_ns) << name;
    EXPECT_GE(run.attributed_ns(), run.loop_ns - run.loop_ns / 100) << name;
#endif
  }
}

TEST(Profiler, AttachedProfilerLeavesTraceFingerprintUnchanged) {
  ExperimentConfig config;
  config.model = SystemModel::kFrodoThreeParty;
  config.lambda = 0.45;
  config.seed = 11;
  config.record_trace = true;

  const auto baseline = run_experiment_traced(config);
  obs::Profiler profiler;
  config.profiler = &profiler;
  const auto profiled = run_experiment_traced(config);
  // The profiler is a pure observer: golden trace fingerprints are
  // bit-identical with profiling on or off, in every build mode.
  EXPECT_EQ(baseline.record.trace_fingerprint,
            profiled.record.trace_fingerprint);
  EXPECT_EQ(baseline.trace.appended(), profiled.trace.appended());
  // And the run recorded its phase hierarchy.
  EXPECT_FALSE(profiler.snapshot().phases.empty());
}

}  // namespace
}  // namespace sdcm::experiment

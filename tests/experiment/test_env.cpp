#include "sdcm/experiment/env.hpp"

#include <gtest/gtest.h>

#include <cstdlib>

namespace sdcm::experiment::env {
namespace {

// The env knobs are process-global; each test restores what it sets.

TEST(Env, RunsParsesAndFallsBack) {
  unsetenv("SDCM_RUNS");
  EXPECT_EQ(runs(30), 30);
  setenv("SDCM_RUNS", "12", 1);
  EXPECT_EQ(runs(30), 12);
  setenv("SDCM_RUNS", "garbage", 1);
  EXPECT_EQ(runs(30), 30);
  setenv("SDCM_RUNS", "-3", 1);
  EXPECT_EQ(runs(30), 30);
  setenv("SDCM_RUNS", "0", 1);
  EXPECT_EQ(runs(30), 30);  // runs must stay positive
  setenv("SDCM_RUNS", "12trailing", 1);
  EXPECT_EQ(runs(30), 30);  // whole-string parse only
  unsetenv("SDCM_RUNS");
}

TEST(Env, BenchItersSharesTheSemantics) {
  unsetenv("SDCM_BENCH_ITERS");
  EXPECT_EQ(bench_iters(2000), 2000);
  setenv("SDCM_BENCH_ITERS", "50", 1);
  EXPECT_EQ(bench_iters(2000), 50);
  unsetenv("SDCM_BENCH_ITERS");
}

TEST(Env, BenchSmokeIsSetNonEmptyNonZero) {
  unsetenv("SDCM_BENCH_SMOKE");
  EXPECT_FALSE(bench_smoke());
  setenv("SDCM_BENCH_SMOKE", "", 1);
  EXPECT_FALSE(bench_smoke());
  setenv("SDCM_BENCH_SMOKE", "0", 1);
  EXPECT_FALSE(bench_smoke());
  setenv("SDCM_BENCH_SMOKE", "1", 1);
  EXPECT_TRUE(bench_smoke());
  setenv("SDCM_BENCH_SMOKE", "yes", 1);
  EXPECT_TRUE(bench_smoke());
  unsetenv("SDCM_BENCH_SMOKE");
}

TEST(Env, ThreadsAllowsZeroMeaningHardware) {
  unsetenv("SDCM_THREADS");
  EXPECT_EQ(threads(), 0u);
  EXPECT_EQ(threads(8), 8u);
  setenv("SDCM_THREADS", "4", 1);
  EXPECT_EQ(threads(), 4u);
  setenv("SDCM_THREADS", "0", 1);
  EXPECT_EQ(threads(8), 0u);  // explicit 0 = hardware concurrency
  unsetenv("SDCM_THREADS");
}

TEST(Env, IntOrRespectsTheFloor) {
  setenv("SDCM_TEST_KNOB", "5", 1);
  EXPECT_EQ(int_or("SDCM_TEST_KNOB", 1), 5);
  EXPECT_EQ(int_or("SDCM_TEST_KNOB", 1, 10), 1);  // below floor -> fallback
  unsetenv("SDCM_TEST_KNOB");
  EXPECT_EQ(int_or("SDCM_TEST_KNOB", 7), 7);
}

}  // namespace
}  // namespace sdcm::experiment::env

// TopologySpec / TopologyLayout edge cases: id-plan resolution against
// each model's registry row, the dense-packing rule for many
// registries, the clamping contract of resolve_topology, the
// SweepConfig::validate rejections, and that generalized topologies
// (R>2 registries, extra background Managers) actually run and keep the
// m' accounting of Table 2.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sdcm/experiment/protocol_registry.hpp"
#include "sdcm/experiment/scenario.hpp"
#include "sdcm/experiment/sweep.hpp"

namespace sdcm::experiment {
namespace {

TEST(TopologySpec, DefaultResolvesToPaperLayoutForEveryModel) {
  for (const SystemModel model : kAllModels) {
    const auto& descriptor = protocol_descriptor(model);
    const TopologyLayout layout = resolve_topology(model, TopologySpec{});
    EXPECT_EQ(layout.registries, descriptor.registry_nodes)
        << descriptor.name;
    EXPECT_EQ(layout.managers, 1) << descriptor.name;
    EXPECT_EQ(layout.users, 5) << descriptor.name;
    // The historical constants: Manager 10, Users from 11.
    EXPECT_EQ(layout.manager_id(0), kManagerId) << descriptor.name;
    EXPECT_EQ(layout.user_id(0), kFirstUserId) << descriptor.name;
    EXPECT_EQ(layout.node_count(),
              static_cast<std::size_t>(descriptor.registry_nodes) + 6u)
        << descriptor.name;
  }
  const TopologyLayout jini2r =
      resolve_topology(SystemModel::kJiniTwoRegistries, TopologySpec{});
  EXPECT_EQ(jini2r.registry_id(0), kRegistryId);
  EXPECT_EQ(jini2r.registry_id(1), kSecondRegistryId);
}

TEST(TopologySpec, RegistrylessModelsIgnoreRegistryOverride) {
  for (const SystemModel model : {SystemModel::kUpnp, SystemModel::kMdns}) {
    TopologySpec spec;
    spec.registries = 4;
    const TopologyLayout layout = resolve_topology(model, spec);
    EXPECT_EQ(layout.registries, 0);
    EXPECT_EQ(layout.manager_id(0), kManagerId);
  }
}

TEST(TopologySpec, RegistryBackedModelsKeepAtLeastOneRegistry) {
  TopologySpec spec;
  spec.registries = 0;  // resolve_topology clamps; validate() rejects.
  const TopologyLayout layout =
      resolve_topology(SystemModel::kJiniOneRegistry, spec);
  EXPECT_EQ(layout.registries, 1);
}

TEST(TopologySpec, ManagersAndUsersClamp) {
  TopologySpec spec;
  spec.managers = 0;
  spec.users = -3;
  const TopologyLayout layout = resolve_topology(SystemModel::kMdns, spec);
  EXPECT_EQ(layout.managers, 1);  // Manager 0 owns the monitored service.
  EXPECT_EQ(layout.users, 0);
  EXPECT_EQ(layout.node_count(), 1u);
  EXPECT_EQ(layout.user_base(), layout.id_bound());
}

TEST(TopologySpec, ManyRegistriesPackManagersDensely) {
  TopologySpec spec;
  spec.registries = 12;
  spec.users = 3;
  const TopologyLayout layout =
      resolve_topology(SystemModel::kJiniTwoRegistries, spec);
  EXPECT_EQ(layout.registries, 12);
  // Registries occupy 1..12, so the Manager moves past kManagerId.
  EXPECT_EQ(layout.registry_id(11), sim::NodeId{12});
  EXPECT_EQ(layout.manager_base(), sim::NodeId{13});
  EXPECT_EQ(layout.user_base(), sim::NodeId{14});
  EXPECT_EQ(layout.id_bound(), sim::NodeId{17});
}

TEST(TopologySpec, NodeIdsFollowAttachOrderAcrossAllAxes) {
  TopologySpec spec;
  spec.users = 3;
  spec.managers = 2;
  spec.registries = 3;
  const auto ids = topology_node_ids(SystemModel::kJiniTwoRegistries, spec);
  // Registries, then Managers, then Users - the failure-plan order.
  EXPECT_EQ(ids, (std::vector<sim::NodeId>{1, 2, 3, 10, 11, 12, 13, 14}));
  // The legacy users-only overload is the default spec.
  EXPECT_EQ(topology_node_ids(SystemModel::kUpnp, 5),
            topology_node_ids(SystemModel::kUpnp, TopologySpec{}));
}

TEST(TopologySpec, MinimumUpdateMessagesScalesWithRegistries) {
  // Table 2 at the paper spec...
  EXPECT_EQ(minimum_update_messages(SystemModel::kJiniOneRegistry, 5), 7u);
  EXPECT_EQ(minimum_update_messages(SystemModel::kJiniTwoRegistries, 5), 14u);
  // ...and the generalized R-partitioned registry plane: R*(u+2).
  EXPECT_EQ(minimum_update_messages(SystemModel::kJiniTwoRegistries, 5, 3),
            21u);
  EXPECT_EQ(minimum_update_messages(SystemModel::kJiniOneRegistry, 4, 5),
            30u);
  // Models without a registry plane ignore the registry count.
  EXPECT_EQ(minimum_update_messages(SystemModel::kUpnp, 5, 7), 15u);
  EXPECT_EQ(minimum_update_messages(SystemModel::kMdns, 5, 7), 2u);
  EXPECT_EQ(minimum_update_messages(SystemModel::kFrodoThreeParty, 5, 4), 7u);
}

TEST(TopologySpec, JiniThreeRegistryRunMatchesGeneralizedMPrime) {
  ExperimentConfig config;
  config.model = SystemModel::kJiniTwoRegistries;
  config.topology.registries = 3;
  const auto record = run_experiment(config);
  ASSERT_EQ(record.user_reach_times.size(), 5u);
  for (const auto& t : record.user_reach_times) {
    EXPECT_TRUE(t.has_value());
  }
  EXPECT_EQ(record.update_messages,
            minimum_update_messages(config.model, 5, 3));
}

TEST(TopologySpec, BackgroundManagersDoNotJoinTheConsistencyWindow) {
  // Extra Managers publish background services; the monitored change
  // still costs exactly m' update messages at lambda = 0.
  for (const SystemModel model : kAllModels) {
    ExperimentConfig config;
    config.model = model;
    config.topology.users = 3;
    config.topology.managers = 3;
    const auto record = run_experiment(config);
    ASSERT_EQ(record.user_reach_times.size(), 3u)
        << protocol_descriptor(model).name;
    for (const auto& t : record.user_reach_times) {
      EXPECT_TRUE(t.has_value()) << protocol_descriptor(model).name;
    }
    EXPECT_EQ(record.update_messages, minimum_update_messages(model, 3))
        << protocol_descriptor(model).name;
  }
}

TEST(TopologySpec, SweepValidateRejectsDegenerateTopologies) {
  const auto message_for = [](TopologySpec topology,
                              std::vector<SystemModel> models = {
                                  SystemModel::kJiniOneRegistry}) {
    SweepConfig config;
    config.models = std::move(models);
    config.topology = topology;
    return config.validate();
  };

  TopologySpec ok;
  EXPECT_EQ(message_for(ok), std::nullopt);

  TopologySpec no_users;
  no_users.users = 0;
  auto error = message_for(no_users);
  ASSERT_TRUE(error.has_value());
  EXPECT_NE(error->find("users"), std::string::npos);

  TopologySpec no_managers;
  no_managers.managers = 0;
  error = message_for(no_managers);
  ASSERT_TRUE(error.has_value());
  EXPECT_NE(error->find("managers"), std::string::npos);

  TopologySpec zero_registries;
  zero_registries.registries = 0;
  error = message_for(zero_registries);
  ASSERT_TRUE(error.has_value());
  EXPECT_NE(error->find("registries"), std::string::npos);

  TopologySpec negative_registries;
  negative_registries.registries = -2;
  error = message_for(negative_registries);
  ASSERT_TRUE(error.has_value());
  EXPECT_NE(error->find("registries"), std::string::npos);

  // Overriding the registry count is meaningless for a sweep that
  // includes a model with no registry plane.
  TopologySpec two_registries;
  two_registries.registries = 2;
  error = message_for(two_registries, {SystemModel::kJiniOneRegistry,
                                       SystemModel::kMdns});
  ASSERT_TRUE(error.has_value());
  EXPECT_NE(error->find("registry"), std::string::npos);
  EXPECT_EQ(message_for(two_registries, {SystemModel::kJiniOneRegistry}),
            std::nullopt);
}

}  // namespace
}  // namespace sdcm::experiment

// The workload engine: deterministic plan expansion, validation against
// the run horizon, and end-to-end behaviour (fingerprint determinism,
// shard-merge invariance, saturation counters).

#include "sdcm/experiment/workload.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>

#include "sdcm/experiment/scenario.hpp"
#include "sdcm/experiment/sink.hpp"
#include "sdcm/experiment/sweep.hpp"

namespace sdcm::experiment {
namespace {

using sim::seconds;

WorkloadTopology paper_topology() {
  WorkloadTopology topo;
  for (sim::NodeId user = 11; user <= 15; ++user) topo.users.push_back(user);
  topo.manager = 10;
  topo.announcers = {10};
  return topo;
}

bool same_episodes(const std::vector<net::FailureEpisode>& a,
                   const std::vector<net::FailureEpisode>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].node != b[i].node || a[i].mode != b[i].mode ||
        a[i].start != b[i].start || a[i].duration != b[i].duration) {
      return false;
    }
  }
  return true;
}

TEST(WorkloadNames, RoundTripThroughTheRegistry) {
  for (const WorkloadKind kind :
       {WorkloadKind::kStatic, WorkloadKind::kChurn, WorkloadKind::kStorm,
        WorkloadKind::kSaturation}) {
    const auto parsed = workload_from_name(to_string(kind));
    ASSERT_TRUE(parsed.has_value()) << to_string(kind);
    EXPECT_EQ(*parsed, kind);
  }
  EXPECT_FALSE(workload_from_name("thundering-herd").has_value());
}

TEST(WorkloadPlanning, SameSeedYieldsTheIdenticalPlan) {
  WorkloadSpec spec;
  spec.kind = WorkloadKind::kChurn;
  const auto topo = paper_topology();
  sim::Random rng_a(42), rng_b(42), rng_c(43);
  const WorkloadPlan a = plan_workload(spec, topo, seconds(5400), rng_a);
  const WorkloadPlan b = plan_workload(spec, topo, seconds(5400), rng_b);
  const WorkloadPlan c = plan_workload(spec, topo, seconds(5400), rng_c);
  EXPECT_EQ(a.events, b.events);
  EXPECT_TRUE(same_episodes(a.episodes, b.episodes));
  EXPECT_EQ(a.departed, b.departed);
  EXPECT_NE(a.events, c.events);  // a different stream re-rolls the draws
}

TEST(WorkloadPlanning, ChurnPairsLifecycleEventsWithOutageEpisodes) {
  WorkloadSpec spec;
  spec.kind = WorkloadKind::kChurn;
  const auto topo = paper_topology();
  sim::Random rng(7);
  const WorkloadPlan plan = plan_workload(spec, topo, seconds(5400), rng);

  // Every cycle is one depart + one rejoin + one kBoth episode covering
  // the absence, drawn inside the churn window.
  ASSERT_FALSE(plan.events.empty());
  EXPECT_TRUE(plan.departed.empty());
  std::size_t departs = 0, rejoins = 0;
  for (const WorkloadEvent& event : plan.events) {
    if (event.action == WorkloadAction::kDepart) ++departs;
    if (event.action == WorkloadAction::kRejoin) ++rejoins;
    EXPECT_GE(event.at, spec.churn.window_start);
    EXPECT_LT(event.at, seconds(5400));
  }
  EXPECT_EQ(departs, rejoins);
  EXPECT_EQ(plan.episodes.size(), departs);
  EXPECT_TRUE(std::is_sorted(
      plan.events.begin(), plan.events.end(),
      [](const WorkloadEvent& a, const WorkloadEvent& b) { return a.at < b.at; }));
  for (const net::FailureEpisode& ep : plan.episodes) {
    EXPECT_EQ(ep.mode, net::FailureMode::kBoth);
    EXPECT_GT(ep.duration, 0);
    EXPECT_LT(ep.end(), seconds(5400));
    // The episode starts exactly at its node's depart event.
    const bool matched = std::any_of(
        plan.events.begin(), plan.events.end(), [&](const WorkloadEvent& e) {
          return e.action == WorkloadAction::kDepart && e.node == ep.node &&
                 e.at == ep.start;
        });
    EXPECT_TRUE(matched);
  }
}

TEST(WorkloadPlanning, PermanentLeaversAreReportedDeparted) {
  WorkloadSpec spec;
  spec.kind = WorkloadKind::kChurn;
  spec.churn.permanent_leave_fraction = 1.0;
  const auto topo = paper_topology();
  sim::Random rng(7);
  const WorkloadPlan plan = plan_workload(spec, topo, seconds(5400), rng);

  ASSERT_EQ(plan.departed.size(), topo.users.size());
  ASSERT_EQ(plan.events.size(), topo.users.size());
  ASSERT_EQ(plan.episodes.size(), topo.users.size());
  for (const WorkloadEvent& event : plan.events) {
    EXPECT_EQ(event.action, WorkloadAction::kDepart);
  }
  for (const net::FailureEpisode& ep : plan.episodes) {
    EXPECT_EQ(ep.end(), seconds(5400));  // silent to the horizon
  }
}

TEST(WorkloadPlanning, StormBurstsCoverEveryAnnouncerOnTheGrid) {
  WorkloadSpec spec;
  spec.kind = WorkloadKind::kStorm;
  WorkloadTopology topo = paper_topology();
  topo.announcers = {1, 2};
  sim::Random rng(7);
  const WorkloadPlan plan = plan_workload(spec, topo, seconds(5400), rng);

  ASSERT_EQ(plan.events.size(),
            static_cast<std::size_t>(spec.storm.bursts) *
                static_cast<std::size_t>(spec.storm.announcements_per_burst) *
                2);
  EXPECT_TRUE(plan.episodes.empty());
  for (const WorkloadEvent& event : plan.events) {
    EXPECT_EQ(event.action, WorkloadAction::kAnnounce);
    // No jitter: every burst lands exactly on the synchronized grid.
    const auto offset = event.at - spec.storm.first_burst;
    EXPECT_EQ(offset % spec.storm.burst_spacing, 0);
  }
}

TEST(WorkloadPlanning, MitigationJitterStaggersTheHerd) {
  WorkloadSpec spec;
  spec.kind = WorkloadKind::kStorm;
  spec.storm.mitigation_jitter = seconds(30);
  WorkloadTopology topo = paper_topology();
  topo.announcers = {1, 2};
  sim::Random rng(7);
  const WorkloadPlan plan = plan_workload(spec, topo, seconds(5400), rng);

  bool any_staggered = false;
  for (const WorkloadEvent& event : plan.events) {
    const auto offset =
        (event.at - spec.storm.first_burst) % spec.storm.burst_spacing;
    EXPECT_GE(offset, 0);
    EXPECT_LE(offset, spec.storm.mitigation_jitter);
    if (offset != 0) any_staggered = true;
  }
  EXPECT_TRUE(any_staggered);
}

TEST(WorkloadValidation, RejectsPlansThatOutliveTheRun) {
  WorkloadSpec churn;
  churn.kind = WorkloadKind::kChurn;
  EXPECT_FALSE(churn.validate(seconds(5400)).has_value());
  churn.churn.window_end = seconds(5400);  // rejoin lag needs headroom
  EXPECT_TRUE(churn.validate(seconds(5400)).has_value());

  WorkloadSpec storm;
  storm.kind = WorkloadKind::kStorm;
  EXPECT_FALSE(storm.validate(seconds(5400)).has_value());
  storm.storm.burst_spacing = seconds(800);  // last burst at 5800 s
  EXPECT_TRUE(storm.validate(seconds(5400)).has_value());

  WorkloadSpec saturation;
  saturation.kind = WorkloadKind::kSaturation;
  EXPECT_FALSE(saturation.validate(seconds(5400)).has_value());
  saturation.saturation.link_rate_hz = 0.0;
  EXPECT_TRUE(saturation.validate(seconds(5400)).has_value());

  WorkloadSpec inert;  // kStatic never fails validation
  EXPECT_FALSE(inert.validate(seconds(1)).has_value());
}

TEST(WorkloadValidation, SweepConfigRejectsAnOverlongWorkload) {
  SweepConfig config;
  config.workload.kind = WorkloadKind::kChurn;
  config.workload.churn.window_end = seconds(6000);
  const auto problem = config.validate();
  ASSERT_TRUE(problem.has_value());
  EXPECT_NE(problem->find("workload"), std::string::npos);
  EXPECT_THROW((void)run_sweep(config), std::invalid_argument);
}

TEST(WorkloadRuns, FingerprintsAreDeterministicAndKindSensitive) {
  ExperimentConfig config;
  config.model = SystemModel::kJiniOneRegistry;
  config.lambda = 0.2;
  config.seed = 11;
  config.record_trace = true;

  const auto fingerprint = [&](WorkloadKind kind) {
    ExperimentConfig run = config;
    run.workload.kind = kind;
    return run_experiment(run).trace_fingerprint;
  };

  const auto static_fp = fingerprint(WorkloadKind::kStatic);
  for (const WorkloadKind kind : {WorkloadKind::kChurn, WorkloadKind::kStorm,
                                  WorkloadKind::kSaturation}) {
    const auto first = fingerprint(kind);
    EXPECT_EQ(first, fingerprint(kind)) << to_string(kind);
    EXPECT_NE(first, static_fp) << to_string(kind);
  }
}

TEST(WorkloadRuns, ChurnShardsMergeToTheUnshardedCampaign) {
  SweepConfig config;
  config.models = {SystemModel::kUpnp, SystemModel::kMdns};
  config.lambdas = {0.3};
  config.runs = 4;
  config.threads = 2;
  config.workload.kind = WorkloadKind::kChurn;

  const auto whole = run_sweep(config);

  std::ostringstream log0, log1;
  for (std::size_t i = 0; i < 2; ++i) {
    SweepConfig shard = config;
    shard.shard = {i, 2};
    JsonlSink sink(i == 0 ? log0 : log1);
    shard.sink = &sink;
    (void)run_sweep(shard);
  }
  std::istringstream in0(log0.str()), in1(log1.str());
  std::istream* shards[] = {&in0, &in1};
  std::string error;
  const auto merged = merge_jsonl(shards, error);
  ASSERT_TRUE(merged.has_value()) << error;
  ASSERT_EQ(merged->size(), whole.size());
  for (std::size_t i = 0; i < whole.size(); ++i) {
    EXPECT_EQ(whole.points[i].metrics.responsiveness,
              merged->points[i].metrics.responsiveness);
    EXPECT_EQ(whole.points[i].metrics.efficiency,
              merged->points[i].metrics.efficiency);
  }
  EXPECT_EQ(whole.summary.kernel.events_fired,
            merged->summary.kernel.events_fired);
}

TEST(WorkloadRuns, MixedWorkloadShardLogsRefuseToMerge) {
  SweepConfig config;
  config.models = {SystemModel::kUpnp};
  config.lambdas = {0.3};
  config.runs = 2;

  std::ostringstream churn_log, static_log;
  {
    SweepConfig churn = config;
    churn.shard = {0, 2};
    churn.workload.kind = WorkloadKind::kChurn;
    JsonlSink sink(churn_log);
    churn.sink = &sink;
    (void)run_sweep(churn);
  }
  {
    SweepConfig plain = config;
    plain.shard = {1, 2};
    JsonlSink sink(static_log);
    plain.sink = &sink;
    (void)run_sweep(plain);
  }
  std::istringstream in0(churn_log.str()), in1(static_log.str());
  std::istream* shards[] = {&in0, &in1};
  std::string error;
  EXPECT_FALSE(merge_jsonl(shards, error).has_value());
  EXPECT_FALSE(error.empty());
}

TEST(WorkloadRuns, SaturationBackpressureShowsUpInKernelStats) {
  ExperimentConfig config;
  config.model = SystemModel::kMdns;
  config.seed = 3;
  config.workload.kind = WorkloadKind::kSaturation;
  config.workload.saturation.link_rate_hz = 20.0;
  config.workload.saturation.burst_capacity = 2.0;
  config.workload.saturation.queue_limit = 3;

  const metrics::RunRecord record = run_experiment(config);
  EXPECT_GT(record.kernel.capacity_delayed, 0u);
  EXPECT_GT(record.kernel.capacity_dropped, 0u);
  EXPECT_GT(record.kernel.capacity_queue_peak, 0u);

  // The static scenario never touches the capacity path.
  ExperimentConfig plain = config;
  plain.workload = WorkloadSpec{};
  const metrics::RunRecord baseline = run_experiment(plain);
  EXPECT_EQ(baseline.kernel.capacity_delayed, 0u);
  EXPECT_EQ(baseline.kernel.capacity_dropped, 0u);
}

}  // namespace
}  // namespace sdcm::experiment

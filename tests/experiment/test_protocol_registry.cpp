// Guard tests for the protocol registry: every SystemModel must carry a
// complete descriptor, and the derived surfaces (kAllModels, the CLI
// name map, the oracle's convergence expectations, the fuzzer's default
// model list) must stay in lockstep with it. A new protocol that misses
// one of these integration points fails here, not in the field.

#include <gtest/gtest.h>

#include <algorithm>
#include <iterator>
#include <set>
#include <string>

#include "sdcm/check/fuzz.hpp"
#include "sdcm/experiment/cli.hpp"
#include "sdcm/experiment/protocol_registry.hpp"

namespace sdcm::experiment {
namespace {

TEST(ProtocolRegistry, OneDescriptorPerModelInEnumOrder) {
  const auto protocols = all_protocols();
  ASSERT_EQ(protocols.size(), std::size(kAllModels));
  for (std::size_t i = 0; i < protocols.size(); ++i) {
    EXPECT_EQ(protocols[i].model, kAllModels[i]);
    EXPECT_EQ(&protocol_descriptor(kAllModels[i]), &protocols[i]);
  }
}

TEST(ProtocolRegistry, NamesAreUniqueAndRoundTripThroughEveryMap) {
  std::set<std::string> seen;
  for (const auto& descriptor : all_protocols()) {
    EXPECT_FALSE(descriptor.name.empty());
    EXPECT_TRUE(seen.insert(std::string(descriptor.name)).second)
        << "duplicate protocol name " << descriptor.name;
    // to_string and both name maps (registry + CLI) are the same table.
    EXPECT_EQ(to_string(descriptor.model), descriptor.name);
    EXPECT_EQ(model_from_name(descriptor.name), descriptor.model);
    EXPECT_EQ(cli::model_from_name(descriptor.name), descriptor.model);
  }
  EXPECT_EQ(model_from_name("NoSuchProtocol"), std::nullopt);
}

TEST(ProtocolRegistry, DescriptorsAreComplete) {
  for (const auto& descriptor : all_protocols()) {
    EXPECT_NE(descriptor.minimum_update_messages, nullptr);
    EXPECT_NE(descriptor.build, nullptr);
    EXPECT_GT(descriptor.minimum_update_messages(5, descriptor.registry_nodes),
              0u);
    EXPECT_GE(descriptor.registry_nodes, 0);
    EXPECT_LE(descriptor.registry_nodes, 2);
    // The log tools' node-id layout follows the descriptor.
    const auto ids = topology_node_ids(descriptor.model, 5);
    EXPECT_EQ(ids.size(),
              static_cast<std::size_t>(descriptor.registry_nodes) + 1 + 5);
  }
}

TEST(ProtocolRegistry, ConvergenceExpectationsMatchTheOracleGate) {
  // The oracle may only demand convergence of protocols whose spec
  // guarantees it. UPnP's invalidation-only GENA path is the one
  // documented exception among the registered protocols.
  for (const auto& descriptor : all_protocols()) {
    const bool expect_guarantee = descriptor.model != SystemModel::kUpnp;
    EXPECT_EQ(descriptor.spec.guarantees_convergence, expect_guarantee)
        << "model " << descriptor.name;
  }
}

TEST(ProtocolRegistry, FuzzerDefaultsCoverEveryRegisteredProtocol) {
  const check::FuzzConfig config;
  ASSERT_EQ(config.models.size(), std::size(kAllModels));
  for (const auto& descriptor : all_protocols()) {
    EXPECT_NE(std::find(config.models.begin(), config.models.end(),
                        descriptor.model),
              config.models.end())
        << "model " << descriptor.name << " missing from fuzz defaults";
  }
}

TEST(ProtocolRegistry, AblationMasksNameTheImplementingModels) {
  const auto& upnp = protocol_descriptor(SystemModel::kUpnp);
  EXPECT_TRUE(upnp.consumes(AblationToggle::kUpnpPr4));
  EXPECT_TRUE(upnp.consumes(AblationToggle::kUpnpPr5));
  EXPECT_FALSE(upnp.consumes(AblationToggle::kFrodoPr1));
  for (const auto model :
       {SystemModel::kFrodoThreeParty, SystemModel::kFrodoTwoParty}) {
    const auto& frodo = protocol_descriptor(model);
    EXPECT_TRUE(frodo.consumes(AblationToggle::kFrodoPr1));
    EXPECT_TRUE(frodo.consumes(AblationToggle::kFrodoSrn2));
    EXPECT_TRUE(frodo.consumes(AblationToggle::kFrodoPr5));
    EXPECT_FALSE(frodo.consumes(AblationToggle::kUpnpPr4));
  }
  // The registryless decentralized model implements no ablation toggle.
  const auto& mdns = protocol_descriptor(SystemModel::kMdns);
  EXPECT_EQ(mdns.ablation_mask, 0u);
}

TEST(ProtocolRegistry, ModelNameListMatchesTheRegistryOrder) {
  std::string expected;
  for (const auto& descriptor : all_protocols()) {
    if (!expected.empty()) expected += ' ';
    expected += descriptor.name;
  }
  EXPECT_EQ(model_name_list(), expected);
  EXPECT_NE(model_name_list(',').find("mDNS"), std::string::npos);
}

}  // namespace
}  // namespace sdcm::experiment

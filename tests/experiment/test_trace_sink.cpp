// TraceSink under a real sweep: every run's trace streams to its own
// JSONL file whose round-tripped fingerprint matches an identical
// standalone run, and the manifest indexes all of them.
#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "sdcm/experiment/sink.hpp"
#include "sdcm/experiment/sweep.hpp"
#include "sdcm/obs/trace_jsonl.hpp"

namespace sdcm::experiment {
namespace {

TEST(TraceSink, RunFileNamesAreStable) {
  EXPECT_EQ(TraceSink::run_file_name(SystemModel::kFrodoThreeParty, 6, 7),
            "trace_FRODO-3party_l06_r007.jsonl");
  EXPECT_EQ(TraceSink::run_file_name(SystemModel::kUpnp, 0, 0),
            "trace_UPnP_l00_r000.jsonl");
}

TEST(TraceSink, StreamsEveryRunOfASweepWithExactFingerprints) {
  const std::string dir = ::testing::TempDir() + "sdcm_trace_sink_test";
  TraceSink traces(dir);

  SweepConfig config;
  config.models = {SystemModel::kUpnp, SystemModel::kFrodoTwoParty};
  config.lambdas = {0.0, 0.3};
  config.runs = 2;
  config.threads = 2;
  config.trace_sink = &traces;
  const SweepResult result = run_sweep(config);
  EXPECT_EQ(result.summary.runs_completed, 8u);
  EXPECT_GT(traces.records_written(), 0u);
  EXPECT_GT(traces.bytes_flushed(), 0u);

  std::uint64_t records_total = 0;
  std::string manifest_text;
  {
    std::ifstream manifest(dir + "/manifest.jsonl");
    ASSERT_TRUE(manifest.is_open());
    std::string line;
    std::size_t lines = 0;
    while (std::getline(manifest, line)) {
      ++lines;
      manifest_text += line;
      manifest_text += '\n';
    }
    EXPECT_EQ(lines, 8u);
  }

  for (const SystemModel model : config.models) {
    for (std::size_t li = 0; li < config.lambdas.size(); ++li) {
      for (int run = 0; run < config.runs; ++run) {
        const std::string name = TraceSink::run_file_name(model, li, run);
        EXPECT_NE(manifest_text.find("\"" + name + "\""), std::string::npos);

        std::ifstream in(dir + "/" + name);
        ASSERT_TRUE(in.is_open()) << name;
        sim::TraceLog log;
        std::string error;
        ASSERT_TRUE(obs::read_trace_jsonl(in, log, error))
            << name << ": " << error;
        records_total += log.appended();

        // The streamed file carries the exact trace of the identical
        // standalone run.
        ExperimentConfig standalone;
        standalone.model = model;
        standalone.lambda = config.lambdas[li];
        standalone.seed = run_seed(config.master_seed, model, li, run);
        standalone.topology = config.topology;
        standalone.record_trace = true;
        config.ablation.apply(standalone);
        const auto record = run_experiment(standalone);
        EXPECT_EQ(log.fingerprint(), record.trace_fingerprint) << name;
      }
    }
  }
  EXPECT_EQ(records_total, traces.records_written());
}

TEST(TraceSink, ThrowsWhenDirectoryCannotBeCreated) {
  EXPECT_THROW(TraceSink("/dev/null/nope"), std::runtime_error);
}

}  // namespace
}  // namespace sdcm::experiment

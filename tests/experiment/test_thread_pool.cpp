#include "sdcm/experiment/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace sdcm::experiment {
namespace {

TEST(ThreadPool, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, ParallelForCoversDisjointIndices) {
  ThreadPool pool(4);
  std::vector<int> hits(1000, 0);
  pool.parallel_for(hits.size(), [&](std::size_t i) { hits[i] += 1; });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 1000);
  for (const int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPool, SingleThreadWorks) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.thread_count(), 1u);
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    pool.submit([&order, i] { order.push_back(i); });
  }
  pool.wait_idle();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ThreadPool, ZeroRequestsHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.thread_count(), 1u);
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturns) {
  ThreadPool pool(2);
  pool.wait_idle();
  SUCCEED();
}

TEST(ThreadPool, DestructionDrainsCleanly) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 10; ++i) {
      pool.submit([&count] { count.fetch_add(1); });
    }
    pool.wait_idle();
  }
  EXPECT_EQ(count.load(), 10);
}

}  // namespace
}  // namespace sdcm::experiment

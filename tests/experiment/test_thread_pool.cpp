#include "sdcm/experiment/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

namespace sdcm::experiment {
namespace {

TEST(ThreadPool, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, ParallelForCoversDisjointIndices) {
  ThreadPool pool(4);
  std::vector<int> hits(1000, 0);
  pool.parallel_for(hits.size(), [&](std::size_t i) { hits[i] += 1; });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 1000);
  for (const int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPool, SingleThreadWorks) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.thread_count(), 1u);
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    pool.submit([&order, i] { order.push_back(i); });
  }
  pool.wait_idle();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ThreadPool, ZeroRequestsHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.thread_count(), 1u);
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturns) {
  ThreadPool pool(2);
  pool.wait_idle();
  SUCCEED();
}

TEST(ThreadPool, DestructionDrainsCleanly) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 10; ++i) {
      pool.submit([&count] { count.fetch_add(1); });
    }
    pool.wait_idle();
  }
  EXPECT_EQ(count.load(), 10);
}

TEST(ThreadPool, ThrowingTaskDoesNotHangAndRethrows) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.submit([] { throw std::runtime_error("task boom"); });
  for (int i = 0; i < 20; ++i) {
    pool.submit([&count] { count.fetch_add(1); });
  }
  // Pre-fix, the throwing task leaked its in_flight_ increment and
  // wait_idle() hung forever (or std::terminate tore the worker down).
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  EXPECT_EQ(count.load(), 20);
  // The error is cleared once rethrown; the pool remains usable.
  pool.submit([&count] { count.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 21);
}

TEST(ThreadPool, ParallelForRethrowsBodyException) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  EXPECT_THROW(pool.parallel_for(100,
                                 [&ran](std::size_t i) {
                                   if (i == 13) {
                                     throw std::runtime_error("body boom");
                                   }
                                   ran.fetch_add(1);
                                 }),
               std::runtime_error);
  // Remaining iterations still ran; only index 13 is missing.
  EXPECT_EQ(ran.load(), 99);
}

TEST(ThreadPool, ConcurrentParallelForsDoNotBlockEachOther) {
  ThreadPool pool(4);
  std::atomic<int> first{0};
  std::atomic<int> second{0};
  std::thread other([&] {
    pool.parallel_for(200, [&second](std::size_t) { second.fetch_add(1); });
  });
  pool.parallel_for(200, [&first](std::size_t) { first.fetch_add(1); });
  other.join();
  EXPECT_EQ(first.load(), 200);
  EXPECT_EQ(second.load(), 200);
}

TEST(ThreadPool, SubmitAfterStopThrows) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.submit([&count] { count.fetch_add(1); });
  pool.stop();
  EXPECT_EQ(count.load(), 1);
  EXPECT_THROW(pool.submit([] {}), std::runtime_error);
}

TEST(ThreadPool, StopIsIdempotent) {
  ThreadPool pool(2);
  pool.stop();
  pool.stop();
  SUCCEED();
}

}  // namespace
}  // namespace sdcm::experiment

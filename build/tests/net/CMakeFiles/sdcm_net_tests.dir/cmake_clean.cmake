file(REMOVE_RECURSE
  "CMakeFiles/sdcm_net_tests.dir/test_counters.cpp.o"
  "CMakeFiles/sdcm_net_tests.dir/test_counters.cpp.o.d"
  "CMakeFiles/sdcm_net_tests.dir/test_failure_model.cpp.o"
  "CMakeFiles/sdcm_net_tests.dir/test_failure_model.cpp.o.d"
  "CMakeFiles/sdcm_net_tests.dir/test_network.cpp.o"
  "CMakeFiles/sdcm_net_tests.dir/test_network.cpp.o.d"
  "CMakeFiles/sdcm_net_tests.dir/test_tcp.cpp.o"
  "CMakeFiles/sdcm_net_tests.dir/test_tcp.cpp.o.d"
  "sdcm_net_tests"
  "sdcm_net_tests.pdb"
  "sdcm_net_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdcm_net_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

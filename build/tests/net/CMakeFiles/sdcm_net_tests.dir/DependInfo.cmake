
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/net/test_counters.cpp" "tests/net/CMakeFiles/sdcm_net_tests.dir/test_counters.cpp.o" "gcc" "tests/net/CMakeFiles/sdcm_net_tests.dir/test_counters.cpp.o.d"
  "/root/repo/tests/net/test_failure_model.cpp" "tests/net/CMakeFiles/sdcm_net_tests.dir/test_failure_model.cpp.o" "gcc" "tests/net/CMakeFiles/sdcm_net_tests.dir/test_failure_model.cpp.o.d"
  "/root/repo/tests/net/test_network.cpp" "tests/net/CMakeFiles/sdcm_net_tests.dir/test_network.cpp.o" "gcc" "tests/net/CMakeFiles/sdcm_net_tests.dir/test_network.cpp.o.d"
  "/root/repo/tests/net/test_tcp.cpp" "tests/net/CMakeFiles/sdcm_net_tests.dir/test_tcp.cpp.o" "gcc" "tests/net/CMakeFiles/sdcm_net_tests.dir/test_tcp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/sdcm_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sdcm_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty dependencies file for sdcm_net_tests.
# This may be replaced when dependencies are built.

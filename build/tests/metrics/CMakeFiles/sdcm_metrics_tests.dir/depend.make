# Empty dependencies file for sdcm_metrics_tests.
# This may be replaced when dependencies are built.

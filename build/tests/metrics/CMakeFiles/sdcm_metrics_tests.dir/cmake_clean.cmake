file(REMOVE_RECURSE
  "CMakeFiles/sdcm_metrics_tests.dir/test_stats.cpp.o"
  "CMakeFiles/sdcm_metrics_tests.dir/test_stats.cpp.o.d"
  "CMakeFiles/sdcm_metrics_tests.dir/test_update_metrics.cpp.o"
  "CMakeFiles/sdcm_metrics_tests.dir/test_update_metrics.cpp.o.d"
  "sdcm_metrics_tests"
  "sdcm_metrics_tests.pdb"
  "sdcm_metrics_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdcm_metrics_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/upnp/test_upnp.cpp" "tests/upnp/CMakeFiles/sdcm_upnp_tests.dir/test_upnp.cpp.o" "gcc" "tests/upnp/CMakeFiles/sdcm_upnp_tests.dir/test_upnp.cpp.o.d"
  "/root/repo/tests/upnp/test_upnp_edge_cases.cpp" "tests/upnp/CMakeFiles/sdcm_upnp_tests.dir/test_upnp_edge_cases.cpp.o" "gcc" "tests/upnp/CMakeFiles/sdcm_upnp_tests.dir/test_upnp_edge_cases.cpp.o.d"
  "/root/repo/tests/upnp/test_upnp_recovery.cpp" "tests/upnp/CMakeFiles/sdcm_upnp_tests.dir/test_upnp_recovery.cpp.o" "gcc" "tests/upnp/CMakeFiles/sdcm_upnp_tests.dir/test_upnp_recovery.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/upnp/CMakeFiles/sdcm_upnp.dir/DependInfo.cmake"
  "/root/repo/build/src/discovery/CMakeFiles/sdcm_discovery.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/sdcm_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sdcm_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

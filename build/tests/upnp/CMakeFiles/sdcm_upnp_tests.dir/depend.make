# Empty dependencies file for sdcm_upnp_tests.
# This may be replaced when dependencies are built.

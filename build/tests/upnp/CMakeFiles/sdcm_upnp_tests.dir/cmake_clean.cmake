file(REMOVE_RECURSE
  "CMakeFiles/sdcm_upnp_tests.dir/test_upnp.cpp.o"
  "CMakeFiles/sdcm_upnp_tests.dir/test_upnp.cpp.o.d"
  "CMakeFiles/sdcm_upnp_tests.dir/test_upnp_edge_cases.cpp.o"
  "CMakeFiles/sdcm_upnp_tests.dir/test_upnp_edge_cases.cpp.o.d"
  "CMakeFiles/sdcm_upnp_tests.dir/test_upnp_recovery.cpp.o"
  "CMakeFiles/sdcm_upnp_tests.dir/test_upnp_recovery.cpp.o.d"
  "sdcm_upnp_tests"
  "sdcm_upnp_tests.pdb"
  "sdcm_upnp_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdcm_upnp_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

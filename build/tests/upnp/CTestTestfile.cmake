# CMake generated Testfile for 
# Source directory: /root/repo/tests/upnp
# Build directory: /root/repo/build/tests/upnp
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/upnp/sdcm_upnp_tests[1]_include.cmake")


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/experiment/test_cli.cpp" "tests/experiment/CMakeFiles/sdcm_experiment_tests.dir/test_cli.cpp.o" "gcc" "tests/experiment/CMakeFiles/sdcm_experiment_tests.dir/test_cli.cpp.o.d"
  "/root/repo/tests/experiment/test_report.cpp" "tests/experiment/CMakeFiles/sdcm_experiment_tests.dir/test_report.cpp.o" "gcc" "tests/experiment/CMakeFiles/sdcm_experiment_tests.dir/test_report.cpp.o.d"
  "/root/repo/tests/experiment/test_scenario.cpp" "tests/experiment/CMakeFiles/sdcm_experiment_tests.dir/test_scenario.cpp.o" "gcc" "tests/experiment/CMakeFiles/sdcm_experiment_tests.dir/test_scenario.cpp.o.d"
  "/root/repo/tests/experiment/test_sweep.cpp" "tests/experiment/CMakeFiles/sdcm_experiment_tests.dir/test_sweep.cpp.o" "gcc" "tests/experiment/CMakeFiles/sdcm_experiment_tests.dir/test_sweep.cpp.o.d"
  "/root/repo/tests/experiment/test_thread_pool.cpp" "tests/experiment/CMakeFiles/sdcm_experiment_tests.dir/test_thread_pool.cpp.o" "gcc" "tests/experiment/CMakeFiles/sdcm_experiment_tests.dir/test_thread_pool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/experiment/CMakeFiles/sdcm_experiment.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/sdcm_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/upnp/CMakeFiles/sdcm_upnp.dir/DependInfo.cmake"
  "/root/repo/build/src/jini/CMakeFiles/sdcm_jini.dir/DependInfo.cmake"
  "/root/repo/build/src/frodo/CMakeFiles/sdcm_frodo.dir/DependInfo.cmake"
  "/root/repo/build/src/discovery/CMakeFiles/sdcm_discovery.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/sdcm_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sdcm_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty dependencies file for sdcm_experiment_tests.
# This may be replaced when dependencies are built.

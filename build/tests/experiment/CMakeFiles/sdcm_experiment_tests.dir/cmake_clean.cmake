file(REMOVE_RECURSE
  "CMakeFiles/sdcm_experiment_tests.dir/test_cli.cpp.o"
  "CMakeFiles/sdcm_experiment_tests.dir/test_cli.cpp.o.d"
  "CMakeFiles/sdcm_experiment_tests.dir/test_report.cpp.o"
  "CMakeFiles/sdcm_experiment_tests.dir/test_report.cpp.o.d"
  "CMakeFiles/sdcm_experiment_tests.dir/test_scenario.cpp.o"
  "CMakeFiles/sdcm_experiment_tests.dir/test_scenario.cpp.o.d"
  "CMakeFiles/sdcm_experiment_tests.dir/test_sweep.cpp.o"
  "CMakeFiles/sdcm_experiment_tests.dir/test_sweep.cpp.o.d"
  "CMakeFiles/sdcm_experiment_tests.dir/test_thread_pool.cpp.o"
  "CMakeFiles/sdcm_experiment_tests.dir/test_thread_pool.cpp.o.d"
  "sdcm_experiment_tests"
  "sdcm_experiment_tests.pdb"
  "sdcm_experiment_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdcm_experiment_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

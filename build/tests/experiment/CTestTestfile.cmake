# CMake generated Testfile for 
# Source directory: /root/repo/tests/experiment
# Build directory: /root/repo/build/tests/experiment
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/experiment/sdcm_experiment_tests[1]_include.cmake")

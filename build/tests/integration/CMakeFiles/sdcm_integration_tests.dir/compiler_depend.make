# Empty compiler generated dependencies file for sdcm_integration_tests.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/integration/test_cm2_polling.cpp" "tests/integration/CMakeFiles/sdcm_integration_tests.dir/test_cm2_polling.cpp.o" "gcc" "tests/integration/CMakeFiles/sdcm_integration_tests.dir/test_cm2_polling.cpp.o.d"
  "/root/repo/tests/integration/test_cross_protocol.cpp" "tests/integration/CMakeFiles/sdcm_integration_tests.dir/test_cross_protocol.cpp.o" "gcc" "tests/integration/CMakeFiles/sdcm_integration_tests.dir/test_cross_protocol.cpp.o.d"
  "/root/repo/tests/integration/test_eventual_consistency.cpp" "tests/integration/CMakeFiles/sdcm_integration_tests.dir/test_eventual_consistency.cpp.o" "gcc" "tests/integration/CMakeFiles/sdcm_integration_tests.dir/test_eventual_consistency.cpp.o.d"
  "/root/repo/tests/integration/test_figure1_sequence.cpp" "tests/integration/CMakeFiles/sdcm_integration_tests.dir/test_figure1_sequence.cpp.o" "gcc" "tests/integration/CMakeFiles/sdcm_integration_tests.dir/test_figure1_sequence.cpp.o.d"
  "/root/repo/tests/integration/test_window_accounting.cpp" "tests/integration/CMakeFiles/sdcm_integration_tests.dir/test_window_accounting.cpp.o" "gcc" "tests/integration/CMakeFiles/sdcm_integration_tests.dir/test_window_accounting.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/experiment/CMakeFiles/sdcm_experiment.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/sdcm_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/upnp/CMakeFiles/sdcm_upnp.dir/DependInfo.cmake"
  "/root/repo/build/src/jini/CMakeFiles/sdcm_jini.dir/DependInfo.cmake"
  "/root/repo/build/src/frodo/CMakeFiles/sdcm_frodo.dir/DependInfo.cmake"
  "/root/repo/build/src/discovery/CMakeFiles/sdcm_discovery.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/sdcm_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sdcm_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/sdcm_integration_tests.dir/test_cm2_polling.cpp.o"
  "CMakeFiles/sdcm_integration_tests.dir/test_cm2_polling.cpp.o.d"
  "CMakeFiles/sdcm_integration_tests.dir/test_cross_protocol.cpp.o"
  "CMakeFiles/sdcm_integration_tests.dir/test_cross_protocol.cpp.o.d"
  "CMakeFiles/sdcm_integration_tests.dir/test_eventual_consistency.cpp.o"
  "CMakeFiles/sdcm_integration_tests.dir/test_eventual_consistency.cpp.o.d"
  "CMakeFiles/sdcm_integration_tests.dir/test_figure1_sequence.cpp.o"
  "CMakeFiles/sdcm_integration_tests.dir/test_figure1_sequence.cpp.o.d"
  "CMakeFiles/sdcm_integration_tests.dir/test_window_accounting.cpp.o"
  "CMakeFiles/sdcm_integration_tests.dir/test_window_accounting.cpp.o.d"
  "sdcm_integration_tests"
  "sdcm_integration_tests.pdb"
  "sdcm_integration_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdcm_integration_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

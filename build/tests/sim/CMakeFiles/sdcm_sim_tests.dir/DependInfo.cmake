
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sim/test_event_queue.cpp" "tests/sim/CMakeFiles/sdcm_sim_tests.dir/test_event_queue.cpp.o" "gcc" "tests/sim/CMakeFiles/sdcm_sim_tests.dir/test_event_queue.cpp.o.d"
  "/root/repo/tests/sim/test_random.cpp" "tests/sim/CMakeFiles/sdcm_sim_tests.dir/test_random.cpp.o" "gcc" "tests/sim/CMakeFiles/sdcm_sim_tests.dir/test_random.cpp.o.d"
  "/root/repo/tests/sim/test_simulator.cpp" "tests/sim/CMakeFiles/sdcm_sim_tests.dir/test_simulator.cpp.o" "gcc" "tests/sim/CMakeFiles/sdcm_sim_tests.dir/test_simulator.cpp.o.d"
  "/root/repo/tests/sim/test_time.cpp" "tests/sim/CMakeFiles/sdcm_sim_tests.dir/test_time.cpp.o" "gcc" "tests/sim/CMakeFiles/sdcm_sim_tests.dir/test_time.cpp.o.d"
  "/root/repo/tests/sim/test_trace.cpp" "tests/sim/CMakeFiles/sdcm_sim_tests.dir/test_trace.cpp.o" "gcc" "tests/sim/CMakeFiles/sdcm_sim_tests.dir/test_trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/sdcm_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

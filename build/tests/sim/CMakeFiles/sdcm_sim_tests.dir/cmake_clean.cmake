file(REMOVE_RECURSE
  "CMakeFiles/sdcm_sim_tests.dir/test_event_queue.cpp.o"
  "CMakeFiles/sdcm_sim_tests.dir/test_event_queue.cpp.o.d"
  "CMakeFiles/sdcm_sim_tests.dir/test_random.cpp.o"
  "CMakeFiles/sdcm_sim_tests.dir/test_random.cpp.o.d"
  "CMakeFiles/sdcm_sim_tests.dir/test_simulator.cpp.o"
  "CMakeFiles/sdcm_sim_tests.dir/test_simulator.cpp.o.d"
  "CMakeFiles/sdcm_sim_tests.dir/test_time.cpp.o"
  "CMakeFiles/sdcm_sim_tests.dir/test_time.cpp.o.d"
  "CMakeFiles/sdcm_sim_tests.dir/test_trace.cpp.o"
  "CMakeFiles/sdcm_sim_tests.dir/test_trace.cpp.o.d"
  "sdcm_sim_tests"
  "sdcm_sim_tests.pdb"
  "sdcm_sim_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdcm_sim_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

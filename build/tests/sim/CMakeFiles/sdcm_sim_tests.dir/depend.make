# Empty dependencies file for sdcm_sim_tests.
# This may be replaced when dependencies are built.

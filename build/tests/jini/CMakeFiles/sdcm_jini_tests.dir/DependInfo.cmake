
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/jini/test_jini.cpp" "tests/jini/CMakeFiles/sdcm_jini_tests.dir/test_jini.cpp.o" "gcc" "tests/jini/CMakeFiles/sdcm_jini_tests.dir/test_jini.cpp.o.d"
  "/root/repo/tests/jini/test_jini_edge_cases.cpp" "tests/jini/CMakeFiles/sdcm_jini_tests.dir/test_jini_edge_cases.cpp.o" "gcc" "tests/jini/CMakeFiles/sdcm_jini_tests.dir/test_jini_edge_cases.cpp.o.d"
  "/root/repo/tests/jini/test_jini_recovery.cpp" "tests/jini/CMakeFiles/sdcm_jini_tests.dir/test_jini_recovery.cpp.o" "gcc" "tests/jini/CMakeFiles/sdcm_jini_tests.dir/test_jini_recovery.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/jini/CMakeFiles/sdcm_jini.dir/DependInfo.cmake"
  "/root/repo/build/src/discovery/CMakeFiles/sdcm_discovery.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/sdcm_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sdcm_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty dependencies file for sdcm_jini_tests.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/sdcm_jini_tests.dir/test_jini.cpp.o"
  "CMakeFiles/sdcm_jini_tests.dir/test_jini.cpp.o.d"
  "CMakeFiles/sdcm_jini_tests.dir/test_jini_edge_cases.cpp.o"
  "CMakeFiles/sdcm_jini_tests.dir/test_jini_edge_cases.cpp.o.d"
  "CMakeFiles/sdcm_jini_tests.dir/test_jini_recovery.cpp.o"
  "CMakeFiles/sdcm_jini_tests.dir/test_jini_recovery.cpp.o.d"
  "sdcm_jini_tests"
  "sdcm_jini_tests.pdb"
  "sdcm_jini_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdcm_jini_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# CMake generated Testfile for 
# Source directory: /root/repo/tests/discovery
# Build directory: /root/repo/build/tests/discovery
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/discovery/sdcm_discovery_tests[1]_include.cmake")

file(REMOVE_RECURSE
  "CMakeFiles/sdcm_discovery_tests.dir/test_observer.cpp.o"
  "CMakeFiles/sdcm_discovery_tests.dir/test_observer.cpp.o.d"
  "CMakeFiles/sdcm_discovery_tests.dir/test_recovery.cpp.o"
  "CMakeFiles/sdcm_discovery_tests.dir/test_recovery.cpp.o.d"
  "CMakeFiles/sdcm_discovery_tests.dir/test_service.cpp.o"
  "CMakeFiles/sdcm_discovery_tests.dir/test_service.cpp.o.d"
  "sdcm_discovery_tests"
  "sdcm_discovery_tests.pdb"
  "sdcm_discovery_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdcm_discovery_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

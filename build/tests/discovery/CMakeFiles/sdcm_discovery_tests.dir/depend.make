# Empty dependencies file for sdcm_discovery_tests.
# This may be replaced when dependencies are built.

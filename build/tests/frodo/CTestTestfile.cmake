# CMake generated Testfile for 
# Source directory: /root/repo/tests/frodo
# Build directory: /root/repo/build/tests/frodo
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/frodo/sdcm_frodo_tests[1]_include.cmake")

file(REMOVE_RECURSE
  "CMakeFiles/sdcm_frodo_tests.dir/test_acked_channel.cpp.o"
  "CMakeFiles/sdcm_frodo_tests.dir/test_acked_channel.cpp.o.d"
  "CMakeFiles/sdcm_frodo_tests.dir/test_adaptive_propagation.cpp.o"
  "CMakeFiles/sdcm_frodo_tests.dir/test_adaptive_propagation.cpp.o.d"
  "CMakeFiles/sdcm_frodo_tests.dir/test_election.cpp.o"
  "CMakeFiles/sdcm_frodo_tests.dir/test_election.cpp.o.d"
  "CMakeFiles/sdcm_frodo_tests.dir/test_frodo_edge_cases.cpp.o"
  "CMakeFiles/sdcm_frodo_tests.dir/test_frodo_edge_cases.cpp.o.d"
  "CMakeFiles/sdcm_frodo_tests.dir/test_frodo_recovery.cpp.o"
  "CMakeFiles/sdcm_frodo_tests.dir/test_frodo_recovery.cpp.o.d"
  "CMakeFiles/sdcm_frodo_tests.dir/test_frodo_three_party.cpp.o"
  "CMakeFiles/sdcm_frodo_tests.dir/test_frodo_three_party.cpp.o.d"
  "CMakeFiles/sdcm_frodo_tests.dir/test_frodo_two_party.cpp.o"
  "CMakeFiles/sdcm_frodo_tests.dir/test_frodo_two_party.cpp.o.d"
  "sdcm_frodo_tests"
  "sdcm_frodo_tests.pdb"
  "sdcm_frodo_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdcm_frodo_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/frodo/test_acked_channel.cpp" "tests/frodo/CMakeFiles/sdcm_frodo_tests.dir/test_acked_channel.cpp.o" "gcc" "tests/frodo/CMakeFiles/sdcm_frodo_tests.dir/test_acked_channel.cpp.o.d"
  "/root/repo/tests/frodo/test_adaptive_propagation.cpp" "tests/frodo/CMakeFiles/sdcm_frodo_tests.dir/test_adaptive_propagation.cpp.o" "gcc" "tests/frodo/CMakeFiles/sdcm_frodo_tests.dir/test_adaptive_propagation.cpp.o.d"
  "/root/repo/tests/frodo/test_election.cpp" "tests/frodo/CMakeFiles/sdcm_frodo_tests.dir/test_election.cpp.o" "gcc" "tests/frodo/CMakeFiles/sdcm_frodo_tests.dir/test_election.cpp.o.d"
  "/root/repo/tests/frodo/test_frodo_edge_cases.cpp" "tests/frodo/CMakeFiles/sdcm_frodo_tests.dir/test_frodo_edge_cases.cpp.o" "gcc" "tests/frodo/CMakeFiles/sdcm_frodo_tests.dir/test_frodo_edge_cases.cpp.o.d"
  "/root/repo/tests/frodo/test_frodo_recovery.cpp" "tests/frodo/CMakeFiles/sdcm_frodo_tests.dir/test_frodo_recovery.cpp.o" "gcc" "tests/frodo/CMakeFiles/sdcm_frodo_tests.dir/test_frodo_recovery.cpp.o.d"
  "/root/repo/tests/frodo/test_frodo_three_party.cpp" "tests/frodo/CMakeFiles/sdcm_frodo_tests.dir/test_frodo_three_party.cpp.o" "gcc" "tests/frodo/CMakeFiles/sdcm_frodo_tests.dir/test_frodo_three_party.cpp.o.d"
  "/root/repo/tests/frodo/test_frodo_two_party.cpp" "tests/frodo/CMakeFiles/sdcm_frodo_tests.dir/test_frodo_two_party.cpp.o" "gcc" "tests/frodo/CMakeFiles/sdcm_frodo_tests.dir/test_frodo_two_party.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/frodo/CMakeFiles/sdcm_frodo.dir/DependInfo.cmake"
  "/root/repo/build/src/discovery/CMakeFiles/sdcm_discovery.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/sdcm_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sdcm_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty dependencies file for sdcm_frodo_tests.
# This may be replaced when dependencies are built.

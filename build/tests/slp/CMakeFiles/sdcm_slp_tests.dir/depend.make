# Empty dependencies file for sdcm_slp_tests.
# This may be replaced when dependencies are built.

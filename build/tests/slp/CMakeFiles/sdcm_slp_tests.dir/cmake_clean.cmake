file(REMOVE_RECURSE
  "CMakeFiles/sdcm_slp_tests.dir/test_slp.cpp.o"
  "CMakeFiles/sdcm_slp_tests.dir/test_slp.cpp.o.d"
  "sdcm_slp_tests"
  "sdcm_slp_tests.pdb"
  "sdcm_slp_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdcm_slp_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/fig4_effectiveness.dir/fig4_effectiveness.cpp.o"
  "CMakeFiles/fig4_effectiveness.dir/fig4_effectiveness.cpp.o.d"
  "fig4_effectiveness"
  "fig4_effectiveness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_effectiveness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

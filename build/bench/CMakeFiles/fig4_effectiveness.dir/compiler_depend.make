# Empty compiler generated dependencies file for fig4_effectiveness.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for cm2_polling.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/cm2_polling.dir/cm2_polling.cpp.o"
  "CMakeFiles/cm2_polling.dir/cm2_polling.cpp.o.d"
  "cm2_polling"
  "cm2_polling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cm2_polling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/message_loss.dir/message_loss.cpp.o"
  "CMakeFiles/message_loss.dir/message_loss.cpp.o.d"
  "message_loss"
  "message_loss.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/message_loss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

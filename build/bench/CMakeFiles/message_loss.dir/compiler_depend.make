# Empty compiler generated dependencies file for message_loss.
# This may be replaced when dependencies are built.

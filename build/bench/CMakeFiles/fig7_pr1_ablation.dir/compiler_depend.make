# Empty compiler generated dependencies file for fig7_pr1_ablation.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/adaptive_push.dir/adaptive_push.cpp.o"
  "CMakeFiles/adaptive_push.dir/adaptive_push.cpp.o.d"
  "adaptive_push"
  "adaptive_push.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_push.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for adaptive_push.
# This may be replaced when dependencies are built.

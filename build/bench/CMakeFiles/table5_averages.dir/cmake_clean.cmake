file(REMOVE_RECURSE
  "CMakeFiles/table5_averages.dir/table5_averages.cpp.o"
  "CMakeFiles/table5_averages.dir/table5_averages.cpp.o.d"
  "table5_averages"
  "table5_averages.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_averages.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for table5_averages.
# This may be replaced when dependencies are built.

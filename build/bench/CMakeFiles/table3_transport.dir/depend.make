# Empty dependencies file for table3_transport.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/table3_transport.dir/table3_transport.cpp.o"
  "CMakeFiles/table3_transport.dir/table3_transport.cpp.o.d"
  "table3_transport"
  "table3_transport.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_transport.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/slp_hybrid.dir/slp_hybrid.cpp.o"
  "CMakeFiles/slp_hybrid.dir/slp_hybrid.cpp.o.d"
  "slp_hybrid"
  "slp_hybrid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slp_hybrid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for slp_hybrid.
# This may be replaced when dependencies are built.

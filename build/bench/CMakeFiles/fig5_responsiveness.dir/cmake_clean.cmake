file(REMOVE_RECURSE
  "CMakeFiles/fig5_responsiveness.dir/fig5_responsiveness.cpp.o"
  "CMakeFiles/fig5_responsiveness.dir/fig5_responsiveness.cpp.o.d"
  "fig5_responsiveness"
  "fig5_responsiveness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_responsiveness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

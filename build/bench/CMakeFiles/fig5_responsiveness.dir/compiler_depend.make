# Empty compiler generated dependencies file for fig5_responsiveness.
# This may be replaced when dependencies are built.

# Empty dependencies file for table2_message_counts.
# This may be replaced when dependencies are built.

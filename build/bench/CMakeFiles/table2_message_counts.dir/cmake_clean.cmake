file(REMOVE_RECURSE
  "CMakeFiles/table2_message_counts.dir/table2_message_counts.cpp.o"
  "CMakeFiles/table2_message_counts.dir/table2_message_counts.cpp.o.d"
  "table2_message_counts"
  "table2_message_counts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_message_counts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/ablation_lease.dir/ablation_lease.cpp.o"
  "CMakeFiles/ablation_lease.dir/ablation_lease.cpp.o.d"
  "ablation_lease"
  "ablation_lease.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_lease.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for ablation_lease.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for fig6_efficiency_degradation.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig6_efficiency_degradation.dir/fig6_efficiency_degradation.cpp.o"
  "CMakeFiles/fig6_efficiency_degradation.dir/fig6_efficiency_degradation.cpp.o.d"
  "fig6_efficiency_degradation"
  "fig6_efficiency_degradation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_efficiency_degradation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

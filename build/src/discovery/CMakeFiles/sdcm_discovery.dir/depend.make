# Empty dependencies file for sdcm_discovery.
# This may be replaced when dependencies are built.

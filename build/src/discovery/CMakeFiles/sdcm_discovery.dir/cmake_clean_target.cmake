file(REMOVE_RECURSE
  "libsdcm_discovery.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/sdcm_discovery.dir/node.cpp.o"
  "CMakeFiles/sdcm_discovery.dir/node.cpp.o.d"
  "CMakeFiles/sdcm_discovery.dir/observer.cpp.o"
  "CMakeFiles/sdcm_discovery.dir/observer.cpp.o.d"
  "CMakeFiles/sdcm_discovery.dir/recovery.cpp.o"
  "CMakeFiles/sdcm_discovery.dir/recovery.cpp.o.d"
  "CMakeFiles/sdcm_discovery.dir/service.cpp.o"
  "CMakeFiles/sdcm_discovery.dir/service.cpp.o.d"
  "libsdcm_discovery.a"
  "libsdcm_discovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdcm_discovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

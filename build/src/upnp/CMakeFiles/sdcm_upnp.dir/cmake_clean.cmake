file(REMOVE_RECURSE
  "CMakeFiles/sdcm_upnp.dir/manager.cpp.o"
  "CMakeFiles/sdcm_upnp.dir/manager.cpp.o.d"
  "CMakeFiles/sdcm_upnp.dir/user.cpp.o"
  "CMakeFiles/sdcm_upnp.dir/user.cpp.o.d"
  "libsdcm_upnp.a"
  "libsdcm_upnp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdcm_upnp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for sdcm_upnp.
# This may be replaced when dependencies are built.

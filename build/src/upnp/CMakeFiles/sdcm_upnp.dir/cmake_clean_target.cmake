file(REMOVE_RECURSE
  "libsdcm_upnp.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/sdcm_metrics.dir/stats.cpp.o"
  "CMakeFiles/sdcm_metrics.dir/stats.cpp.o.d"
  "CMakeFiles/sdcm_metrics.dir/update_metrics.cpp.o"
  "CMakeFiles/sdcm_metrics.dir/update_metrics.cpp.o.d"
  "libsdcm_metrics.a"
  "libsdcm_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdcm_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for sdcm_metrics.
# This may be replaced when dependencies are built.

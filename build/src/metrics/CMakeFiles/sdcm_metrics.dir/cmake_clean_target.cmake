file(REMOVE_RECURSE
  "libsdcm_metrics.a"
)

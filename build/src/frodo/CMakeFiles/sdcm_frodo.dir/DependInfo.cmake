
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/frodo/acked_channel.cpp" "src/frodo/CMakeFiles/sdcm_frodo.dir/acked_channel.cpp.o" "gcc" "src/frodo/CMakeFiles/sdcm_frodo.dir/acked_channel.cpp.o.d"
  "/root/repo/src/frodo/client.cpp" "src/frodo/CMakeFiles/sdcm_frodo.dir/client.cpp.o" "gcc" "src/frodo/CMakeFiles/sdcm_frodo.dir/client.cpp.o.d"
  "/root/repo/src/frodo/device.cpp" "src/frodo/CMakeFiles/sdcm_frodo.dir/device.cpp.o" "gcc" "src/frodo/CMakeFiles/sdcm_frodo.dir/device.cpp.o.d"
  "/root/repo/src/frodo/manager.cpp" "src/frodo/CMakeFiles/sdcm_frodo.dir/manager.cpp.o" "gcc" "src/frodo/CMakeFiles/sdcm_frodo.dir/manager.cpp.o.d"
  "/root/repo/src/frodo/registry_node.cpp" "src/frodo/CMakeFiles/sdcm_frodo.dir/registry_node.cpp.o" "gcc" "src/frodo/CMakeFiles/sdcm_frodo.dir/registry_node.cpp.o.d"
  "/root/repo/src/frodo/user.cpp" "src/frodo/CMakeFiles/sdcm_frodo.dir/user.cpp.o" "gcc" "src/frodo/CMakeFiles/sdcm_frodo.dir/user.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/discovery/CMakeFiles/sdcm_discovery.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/sdcm_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sdcm_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/sdcm_frodo.dir/acked_channel.cpp.o"
  "CMakeFiles/sdcm_frodo.dir/acked_channel.cpp.o.d"
  "CMakeFiles/sdcm_frodo.dir/client.cpp.o"
  "CMakeFiles/sdcm_frodo.dir/client.cpp.o.d"
  "CMakeFiles/sdcm_frodo.dir/device.cpp.o"
  "CMakeFiles/sdcm_frodo.dir/device.cpp.o.d"
  "CMakeFiles/sdcm_frodo.dir/manager.cpp.o"
  "CMakeFiles/sdcm_frodo.dir/manager.cpp.o.d"
  "CMakeFiles/sdcm_frodo.dir/registry_node.cpp.o"
  "CMakeFiles/sdcm_frodo.dir/registry_node.cpp.o.d"
  "CMakeFiles/sdcm_frodo.dir/user.cpp.o"
  "CMakeFiles/sdcm_frodo.dir/user.cpp.o.d"
  "libsdcm_frodo.a"
  "libsdcm_frodo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdcm_frodo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

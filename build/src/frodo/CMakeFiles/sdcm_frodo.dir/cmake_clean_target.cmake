file(REMOVE_RECURSE
  "libsdcm_frodo.a"
)

# Empty compiler generated dependencies file for sdcm_frodo.
# This may be replaced when dependencies are built.

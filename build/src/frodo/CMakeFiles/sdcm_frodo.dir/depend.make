# Empty dependencies file for sdcm_frodo.
# This may be replaced when dependencies are built.

# CMake generated Testfile for 
# Source directory: /root/repo/src/frodo
# Build directory: /root/repo/build/src/frodo
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.

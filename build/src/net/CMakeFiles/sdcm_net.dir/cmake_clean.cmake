file(REMOVE_RECURSE
  "CMakeFiles/sdcm_net.dir/failure_model.cpp.o"
  "CMakeFiles/sdcm_net.dir/failure_model.cpp.o.d"
  "CMakeFiles/sdcm_net.dir/network.cpp.o"
  "CMakeFiles/sdcm_net.dir/network.cpp.o.d"
  "CMakeFiles/sdcm_net.dir/tcp.cpp.o"
  "CMakeFiles/sdcm_net.dir/tcp.cpp.o.d"
  "libsdcm_net.a"
  "libsdcm_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdcm_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libsdcm_net.a"
)

# Empty dependencies file for sdcm_net.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/sdcm_experiment.dir/cli.cpp.o"
  "CMakeFiles/sdcm_experiment.dir/cli.cpp.o.d"
  "CMakeFiles/sdcm_experiment.dir/report.cpp.o"
  "CMakeFiles/sdcm_experiment.dir/report.cpp.o.d"
  "CMakeFiles/sdcm_experiment.dir/scenario.cpp.o"
  "CMakeFiles/sdcm_experiment.dir/scenario.cpp.o.d"
  "CMakeFiles/sdcm_experiment.dir/sweep.cpp.o"
  "CMakeFiles/sdcm_experiment.dir/sweep.cpp.o.d"
  "CMakeFiles/sdcm_experiment.dir/thread_pool.cpp.o"
  "CMakeFiles/sdcm_experiment.dir/thread_pool.cpp.o.d"
  "libsdcm_experiment.a"
  "libsdcm_experiment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdcm_experiment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for sdcm_experiment.
# This may be replaced when dependencies are built.

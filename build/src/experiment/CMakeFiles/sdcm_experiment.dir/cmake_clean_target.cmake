file(REMOVE_RECURSE
  "libsdcm_experiment.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/sdcm_logs.dir/sdcm_logs_main.cpp.o"
  "CMakeFiles/sdcm_logs.dir/sdcm_logs_main.cpp.o.d"
  "sdcm_logs"
  "sdcm_logs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdcm_logs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for sdcm_logs.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/sdcm_sweep.dir/sdcm_sweep_main.cpp.o"
  "CMakeFiles/sdcm_sweep.dir/sdcm_sweep_main.cpp.o.d"
  "sdcm_sweep"
  "sdcm_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdcm_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for sdcm_sweep.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/sdcm_sim.dir/event_queue.cpp.o"
  "CMakeFiles/sdcm_sim.dir/event_queue.cpp.o.d"
  "CMakeFiles/sdcm_sim.dir/random.cpp.o"
  "CMakeFiles/sdcm_sim.dir/random.cpp.o.d"
  "CMakeFiles/sdcm_sim.dir/simulator.cpp.o"
  "CMakeFiles/sdcm_sim.dir/simulator.cpp.o.d"
  "CMakeFiles/sdcm_sim.dir/trace.cpp.o"
  "CMakeFiles/sdcm_sim.dir/trace.cpp.o.d"
  "libsdcm_sim.a"
  "libsdcm_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdcm_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

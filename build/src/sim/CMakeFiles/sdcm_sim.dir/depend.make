# Empty dependencies file for sdcm_sim.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libsdcm_sim.a"
)

file(REMOVE_RECURSE
  "libsdcm_slp.a"
)

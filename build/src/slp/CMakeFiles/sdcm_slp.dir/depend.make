# Empty dependencies file for sdcm_slp.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/sdcm_slp.dir/slp.cpp.o"
  "CMakeFiles/sdcm_slp.dir/slp.cpp.o.d"
  "libsdcm_slp.a"
  "libsdcm_slp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdcm_slp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

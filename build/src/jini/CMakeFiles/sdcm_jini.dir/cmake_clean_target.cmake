file(REMOVE_RECURSE
  "libsdcm_jini.a"
)


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/jini/manager.cpp" "src/jini/CMakeFiles/sdcm_jini.dir/manager.cpp.o" "gcc" "src/jini/CMakeFiles/sdcm_jini.dir/manager.cpp.o.d"
  "/root/repo/src/jini/registry.cpp" "src/jini/CMakeFiles/sdcm_jini.dir/registry.cpp.o" "gcc" "src/jini/CMakeFiles/sdcm_jini.dir/registry.cpp.o.d"
  "/root/repo/src/jini/user.cpp" "src/jini/CMakeFiles/sdcm_jini.dir/user.cpp.o" "gcc" "src/jini/CMakeFiles/sdcm_jini.dir/user.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/discovery/CMakeFiles/sdcm_discovery.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/sdcm_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sdcm_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/sdcm_jini.dir/manager.cpp.o"
  "CMakeFiles/sdcm_jini.dir/manager.cpp.o.d"
  "CMakeFiles/sdcm_jini.dir/registry.cpp.o"
  "CMakeFiles/sdcm_jini.dir/registry.cpp.o.d"
  "CMakeFiles/sdcm_jini.dir/user.cpp.o"
  "CMakeFiles/sdcm_jini.dir/user.cpp.o.d"
  "libsdcm_jini.a"
  "libsdcm_jini.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdcm_jini.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

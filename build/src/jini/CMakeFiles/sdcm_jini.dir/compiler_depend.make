# Empty compiler generated dependencies file for sdcm_jini.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/failure_storm.dir/failure_storm.cpp.o"
  "CMakeFiles/failure_storm.dir/failure_storm.cpp.o.d"
  "failure_storm"
  "failure_storm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/failure_storm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/paper_trace.dir/paper_trace.cpp.o"
  "CMakeFiles/paper_trace.dir/paper_trace.cpp.o.d"
  "paper_trace"
  "paper_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paper_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

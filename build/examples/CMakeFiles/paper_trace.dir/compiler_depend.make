# Empty compiler generated dependencies file for paper_trace.
# This may be replaced when dependencies are built.
